//! The dynamic visibility graph.

use crate::sweep::{self, PointClass};
use obstacle_geom::{orient2d, Orientation, Point, Polygon, Segment};

/// Index of a node within a [`VisibilityGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an obstacle within a [`VisibilityGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObstacleId(pub u32);

/// What a graph node represents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeKind {
    /// A vertex of an obstacle polygon.
    ObstacleVertex {
        /// The obstacle the vertex belongs to.
        obstacle: ObstacleId,
        /// Vertex index within the polygon.
        vertex: u32,
    },
    /// A free point: a query point or an entity ("add entity" in the
    /// paper). Tagged with a caller-chosen identifier.
    Waypoint {
        /// Caller-assigned tag (e.g. the entity id).
        tag: u64,
    },
}

/// Which algorithm computes visibility edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EdgeBuilder {
    /// Pairwise checks against every obstacle: O(n·m) per node, where m is
    /// the total number of obstacle edges. The correctness oracle.
    Naive,
    /// Rotational plane sweep \[SS84\]: O(n log n) per node. The builder
    /// used by the paper (and by default here).
    #[default]
    RotationalSweep,
}

#[derive(Clone, Debug)]
struct NodeData {
    pos: Point,
    kind: NodeKind,
    alive: bool,
    /// Cached pivot-independent classification against the current
    /// obstacle set (see [`sweep::classify`]), maintained for
    /// **waypoints** only; obstacle-vertex classifications live in their
    /// [`ObstacleSlot`] so the sweep can borrow them as slices.
    class: PointClass,
}

#[derive(Clone, Debug)]
struct ObstacleSlot {
    poly: Polygon,
    /// External identifier (e.g. the obstacle dataset object id); used by
    /// the query processor to test set membership cheaply.
    tag: u64,
    /// Node ids of this obstacle's vertices, in polygon order.
    nodes: Vec<NodeId>,
    /// Per-vertex classifications (parallel to `poly.vertices()`).
    vertex_class: Vec<PointClass>,
}

/// A visibility graph over polygonal obstacles and free waypoints.
///
/// Edge weights are Euclidean segment lengths, so shortest paths in the
/// graph are exactly the obstructed shortest paths of the paper (by the
/// Lozano-Pérez/Wesley theorem \[LW79\], shortest obstacle-avoiding paths
/// only turn at obstacle vertices).
///
/// Obstacles are permanent once added (the paper's local graphs only ever
/// grow); waypoints support the full add/remove lifecycle.
#[derive(Clone, Debug, Default)]
pub struct VisibilityGraph {
    builder: EdgeBuilder,
    nodes: Vec<NodeData>,
    adj: Vec<Vec<(NodeId, f64)>>,
    obstacles: Vec<ObstacleSlot>,
}

impl VisibilityGraph {
    /// Creates an empty graph using the given edge builder.
    pub fn new(builder: EdgeBuilder) -> Self {
        VisibilityGraph {
            builder,
            ..Default::default()
        }
    }

    /// The edge builder in use.
    pub fn builder(&self) -> EdgeBuilder {
        self.builder
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Number of undirected edges between live nodes.
    pub fn edge_count(&self) -> usize {
        let total: usize = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| self.adj[i].len())
            .sum();
        total / 2
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.0 as usize].pos
    }

    /// Kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0 as usize].kind
    }

    /// Whether the node id refers to a live node.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .map(|n| n.alive)
            .unwrap_or(false)
    }

    /// Neighbours of a node with edge weights.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, f64)] {
        &self.adj[id.0 as usize]
    }

    /// Total number of node slots (live and dead); valid upper bound for
    /// dense per-node arrays in graph algorithms.
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Whether an obstacle with external tag `tag` is present.
    pub fn has_obstacle_tag(&self, tag: u64) -> bool {
        self.obstacles.iter().any(|o| o.tag == tag)
    }

    /// Iterator over obstacles as `(id, tag, polygon)`.
    pub fn obstacles(&self) -> impl Iterator<Item = (ObstacleId, u64, &Polygon)> {
        self.obstacles
            .iter()
            .enumerate()
            .map(|(i, o)| (ObstacleId(i as u32), o.tag, &o.poly))
    }

    /// The polygon of an obstacle.
    pub fn obstacle_polygon(&self, id: ObstacleId) -> &Polygon {
        &self.obstacles[id.0 as usize].poly
    }

    // -----------------------------------------------------------------
    // Dynamic maintenance (the paper's add_obstacle / add_entity /
    // delete_entity operations)
    // -----------------------------------------------------------------

    /// Adds an obstacle polygon (paper: *add_obstacle*).
    ///
    /// Removes every existing edge that crosses the new polygon's interior,
    /// updates all cached point classifications, then connects the
    /// polygon's vertices to all visible nodes.
    pub fn add_obstacle(&mut self, poly: Polygon, tag: u64) -> ObstacleId {
        // 1. Edges blocked by the newcomer disappear. Only the new polygon
        //    can invalidate existing edges (they were mutually visible
        //    before), so one blocks_segment test per edge suffices.
        let node_n = self.nodes.len();
        for a in 0..node_n {
            if !self.nodes[a].alive {
                continue;
            }
            let pa = self.nodes[a].pos;
            let removed: Vec<NodeId> = self.adj[a]
                .iter()
                .filter(|(b, _)| b.0 as usize > a)
                .filter(|(b, _)| {
                    let pb = self.nodes[b.0 as usize].pos;
                    poly.blocks_segment(Segment::new(pa, pb))
                })
                .map(|(b, _)| *b)
                .collect();
            for b in removed {
                self.remove_edge(NodeId(a as u32), b);
            }
        }

        // 2. The newcomer may add boundary attachments (or interior
        //    containment) to every existing classification.
        let new_idx = self.obstacles.len();
        for slot in &mut self.obstacles {
            for (vi, class) in slot.vertex_class.iter_mut().enumerate() {
                sweep::classify_incremental(class, new_idx, &poly, slot.poly.vertices()[vi]);
            }
        }
        for node in &mut self.nodes {
            if node.alive && matches!(node.kind, NodeKind::Waypoint { .. }) {
                sweep::classify_incremental(&mut node.class, new_idx, &poly, node.pos);
            }
        }

        // 3. Register the obstacle, its vertex classifications and nodes.
        let ob_id = ObstacleId(new_idx as u32);
        let scene: Vec<&Polygon> = self.obstacles.iter().map(|o| &o.poly).collect();
        let vertex_class: Vec<PointClass> = poly
            .vertices()
            .iter()
            .enumerate()
            .map(|(vi, &v)| {
                let mut c = sweep::classify(&scene, v);
                sweep::classify_incremental(&mut c, new_idx, &poly, v);
                debug_assert!(c
                    .attachments
                    .contains(&(new_idx, obstacle_geom::BoundaryAttachment::Vertex(vi))));
                c
            })
            .collect();
        drop(scene);
        let mut node_ids = Vec::with_capacity(poly.len());
        for (vi, &v) in poly.vertices().iter().enumerate() {
            let id = self.push_raw_node(
                v,
                NodeKind::ObstacleVertex {
                    obstacle: ob_id,
                    vertex: vi as u32,
                },
                PointClass::default(), // vertex classes live in the slot
            );
            node_ids.push(id);
        }
        self.obstacles.push(ObstacleSlot {
            poly,
            tag,
            nodes: node_ids.clone(),
            vertex_class,
        });

        // 4. Connect each new vertex to everything it can see (including
        //    its polygon siblings — boundary edges are never blocked).
        for &id in &node_ids {
            self.connect_node(id);
        }
        ob_id
    }

    /// Adds a free waypoint (paper: *add_entity*) and connects it to every
    /// visible node. Returns its node id.
    pub fn add_waypoint(&mut self, pos: Point, tag: u64) -> NodeId {
        let scene: Vec<&Polygon> = self.obstacles.iter().map(|o| &o.poly).collect();
        let class = sweep::classify(&scene, pos);
        drop(scene);
        let id = self.push_raw_node(pos, NodeKind::Waypoint { tag }, class);
        self.connect_node(id);
        id
    }

    /// Removes a waypoint (paper: *delete_entity*), dropping its incident
    /// edges. Panics if `id` is an obstacle vertex.
    pub fn remove_waypoint(&mut self, id: NodeId) {
        assert!(
            matches!(self.nodes[id.0 as usize].kind, NodeKind::Waypoint { .. }),
            "remove_waypoint on an obstacle vertex"
        );
        let neighbours: Vec<NodeId> = self.adj[id.0 as usize].iter().map(|(n, _)| *n).collect();
        for n in neighbours {
            let a = &mut self.adj[n.0 as usize];
            if let Some(i) = a.iter().position(|(m, _)| *m == id) {
                a.swap_remove(i);
            }
        }
        self.adj[id.0 as usize].clear();
        self.nodes[id.0 as usize].alive = false;
    }

    // -----------------------------------------------------------------
    // Bulk construction
    // -----------------------------------------------------------------

    /// Builds a graph from a set of obstacles and waypoints
    /// `(position, tag)` in one pass: one visibility computation per node
    /// over the complete scene (classifications are computed once).
    pub fn build(
        builder: EdgeBuilder,
        obstacles: impl IntoIterator<Item = (Polygon, u64)>,
        waypoints: impl IntoIterator<Item = (Point, u64)>,
    ) -> (Self, Vec<NodeId>) {
        let mut g = VisibilityGraph::new(builder);
        // Register everything first (no edge computation yet).
        for (poly, tag) in obstacles {
            let ob_id = ObstacleId(g.obstacles.len() as u32);
            let mut node_ids = Vec::with_capacity(poly.len());
            for (vi, &v) in poly.vertices().iter().enumerate() {
                let id = g.push_raw_node(
                    v,
                    NodeKind::ObstacleVertex {
                        obstacle: ob_id,
                        vertex: vi as u32,
                    },
                    PointClass::default(),
                );
                node_ids.push(id);
            }
            g.obstacles.push(ObstacleSlot {
                poly,
                tag,
                nodes: node_ids,
                vertex_class: Vec::new(), // filled below
            });
        }
        let mut waypoint_ids = Vec::new();
        for (pos, tag) in waypoints {
            waypoint_ids.push(g.push_raw_node(
                pos,
                NodeKind::Waypoint { tag },
                PointClass::default(),
            ));
        }
        // Classify every point once against the complete scene.
        {
            let polys: Vec<Polygon> = g.obstacles.iter().map(|o| o.poly.clone()).collect();
            let scene: Vec<&Polygon> = polys.iter().collect();
            for slot in &mut g.obstacles {
                slot.vertex_class = slot
                    .poly
                    .vertices()
                    .iter()
                    .map(|&v| sweep::classify(&scene, v))
                    .collect();
            }
            for node in &mut g.nodes {
                if matches!(node.kind, NodeKind::Waypoint { .. }) {
                    node.class = sweep::classify(&scene, node.pos);
                }
            }
        }
        // Compute edges: one visibility pass per node, adding each
        // undirected edge once (from the lower-indexed endpoint).
        for i in 0..g.nodes.len() {
            let vis = g.visible_nodes_from(NodeId(i as u32));
            for j in vis {
                if j.0 as usize > i {
                    g.insert_edge(NodeId(i as u32), j);
                }
            }
        }
        (g, waypoint_ids)
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    fn push_raw_node(&mut self, pos: Point, kind: NodeKind, class: PointClass) -> NodeId {
        self.nodes.push(NodeData {
            pos,
            kind,
            alive: true,
            class,
        });
        self.adj.push(Vec::new());
        NodeId((self.nodes.len() - 1) as u32)
    }

    fn insert_edge(&mut self, a: NodeId, b: NodeId) {
        debug_assert_ne!(a, b);
        let w = self.nodes[a.0 as usize]
            .pos
            .dist(self.nodes[b.0 as usize].pos);
        self.adj[a.0 as usize].push((b, w));
        self.adj[b.0 as usize].push((a, w));
    }

    fn remove_edge(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            let v = &mut self.adj[x.0 as usize];
            if let Some(i) = v.iter().position(|(n, _)| *n == y) {
                v.swap_remove(i);
            }
        }
    }

    /// Connects `id` to all currently visible live nodes (idempotent:
    /// edges already present — e.g. to sibling vertices connected when
    /// *they* were processed — are not duplicated).
    fn connect_node(&mut self, id: NodeId) {
        let vis = self.visible_nodes_from(id);
        for j in vis {
            if j != id && !self.adj[id.0 as usize].iter().any(|(n, _)| *n == j) {
                self.insert_edge(id, j);
            }
        }
    }

    /// Live nodes visible from `id`, per the configured builder.
    fn visible_nodes_from(&self, id: NodeId) -> Vec<NodeId> {
        match self.builder {
            EdgeBuilder::Naive => self.visible_nodes_naive(id),
            EdgeBuilder::RotationalSweep => self.visible_nodes_sweep(id),
        }
    }

    fn visible_nodes_naive(&self, id: NodeId) -> Vec<NodeId> {
        let p = self.nodes[id.0 as usize].pos;
        let mut out = Vec::new();
        for (j, nd) in self.nodes.iter().enumerate() {
            if j == id.0 as usize || !nd.alive {
                continue;
            }
            if self.visible_naive(p, nd.pos) {
                out.push(NodeId(j as u32));
            }
        }
        out
    }

    /// The authoritative pairwise visibility test: the segment must not
    /// pass through any obstacle's interior.
    pub fn visible_naive(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let s = Segment::new(a, b);
        !self.obstacles.iter().any(|o| o.poly.blocks_segment(s))
    }

    fn visible_nodes_sweep(&self, id: NodeId) -> Vec<NodeId> {
        let pivot_data = &self.nodes[id.0 as usize];
        let pivot = pivot_data.pos;
        let scene: Vec<&Polygon> = self.obstacles.iter().map(|o| &o.poly).collect();
        let vertex_class: Vec<&[PointClass]> = self
            .obstacles
            .iter()
            .map(|o| o.vertex_class.as_slice())
            .collect();

        let pivot_vertex = match pivot_data.kind {
            NodeKind::ObstacleVertex { obstacle, vertex } => {
                Some((obstacle.0 as usize, vertex as usize))
            }
            NodeKind::Waypoint { .. } => None,
        };
        let pivot_class: &PointClass = match pivot_data.kind {
            NodeKind::ObstacleVertex { obstacle, vertex } => {
                &self.obstacles[obstacle.0 as usize].vertex_class[vertex as usize]
            }
            NodeKind::Waypoint { .. } => &pivot_data.class,
        };

        let mut free_points: Vec<Point> = Vec::new();
        let mut free_class: Vec<&PointClass> = Vec::new();
        let mut free_ids: Vec<NodeId> = Vec::new();
        for (j, nd) in self.nodes.iter().enumerate() {
            if !nd.alive || j == id.0 as usize {
                continue;
            }
            if let NodeKind::Waypoint { .. } = nd.kind {
                free_points.push(nd.pos);
                free_class.push(&nd.class);
                free_ids.push(NodeId(j as u32));
            }
        }

        let vis = sweep::visible_set_prepared(
            &scene,
            pivot,
            pivot_class,
            pivot_vertex,
            &free_points,
            &free_class,
            &vertex_class,
        );

        let mut out = Vec::new();
        for (si, slot) in self.obstacles.iter().enumerate() {
            for (vi, &nid) in slot.nodes.iter().enumerate() {
                if nid == id || !self.nodes[nid.0 as usize].alive {
                    continue;
                }
                if vis.vertices[si][vi] {
                    out.push(nid);
                }
            }
        }
        for (fi, &nid) in free_ids.iter().enumerate() {
            if vis.free[fi] {
                out.push(nid);
            }
        }
        out
    }

    /// Removes every edge that cannot lie on a shortest path between
    /// waypoints, keeping only edges *tangent* to the obstacles at each
    /// obstacle-vertex endpoint (the tangent visibility graph \[PV95\]
    /// mentioned in §2.3 of the paper).
    ///
    /// A shortest path between free points turns only where it is pulled
    /// taut against an obstacle; at such a vertex both polygon neighbours
    /// lie weakly on one side of the path. Edges failing that test at
    /// either endpoint are removable. Waypoint–waypoint edges always
    /// stay. Returns the number of edges removed.
    ///
    /// After pruning, shortest *waypoint-to-waypoint* distances are
    /// unchanged, but distances between obstacle vertices may increase —
    /// only call this when querying between waypoints (true for all the
    /// paper's algorithms).
    pub fn prune_non_tangent(&mut self) -> usize {
        let mut doomed: Vec<(NodeId, NodeId)> = Vec::new();
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            for &(j, _) in &self.adj[i] {
                if (j.0 as usize) < i {
                    continue; // handle each undirected edge once
                }
                let pi = self.nodes[i].pos;
                let pj = self.nodes[j.0 as usize].pos;
                if !self.tangent_at(NodeId(i as u32), pj) || !self.tangent_at(j, pi) {
                    doomed.push((NodeId(i as u32), j));
                }
            }
        }
        for (a, b) in &doomed {
            self.remove_edge(*a, *b);
        }
        doomed.len()
    }

    /// Whether the edge leaving node `id` towards `toward` is tangent at
    /// `id` (trivially true for waypoints).
    fn tangent_at(&self, id: NodeId, toward: Point) -> bool {
        let node = &self.nodes[id.0 as usize];
        let NodeKind::ObstacleVertex { obstacle, vertex } = node.kind else {
            return true;
        };
        let poly = &self.obstacles[obstacle.0 as usize].poly;
        let n = poly.len();
        let v = node.pos;
        let u = poly.vertices()[(vertex as usize + n - 1) % n];
        let w = poly.vertices()[(vertex as usize + 1) % n];
        // Tangent iff the polygon neighbours are not strictly on opposite
        // sides of the line through (v, toward).
        let o_u = orient2d(v, toward, u);
        let o_w = orient2d(v, toward, w);
        !matches!(
            (o_u, o_w),
            (Orientation::CounterClockwise, Orientation::Clockwise)
                | (Orientation::Clockwise, Orientation::CounterClockwise)
        )
    }

    /// Exhaustive structural check (tests): adjacency symmetry, weights
    /// equal to Euclidean distances, no edges incident to dead nodes, and
    /// — when `check_semantics` — every edge is actually unblocked and
    /// every unblocked node pair is an edge (per the naive oracle).
    pub fn validate(&self, check_semantics: bool) -> Result<(), String> {
        for (i, nd) in self.nodes.iter().enumerate() {
            if !nd.alive && !self.adj[i].is_empty() {
                return Err(format!("dead node {i} has edges"));
            }
            for &(j, w) in &self.adj[i] {
                let jd = &self.nodes[j.0 as usize];
                if !jd.alive {
                    return Err(format!("edge {i} -> dead node {}", j.0));
                }
                let expect = nd.pos.dist(jd.pos);
                if (w - expect).abs() > 1e-9 {
                    return Err(format!("edge {i}-{} weight {w} != {expect}", j.0));
                }
                if !self.adj[j.0 as usize]
                    .iter()
                    .any(|(k, _)| k.0 as usize == i)
                {
                    return Err(format!("edge {i}-{} not symmetric", j.0));
                }
            }
        }
        if check_semantics {
            let live: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].alive)
                .collect();
            for (a_idx, &i) in live.iter().enumerate() {
                for &j in &live[a_idx + 1..] {
                    let pa = self.nodes[i].pos;
                    let pb = self.nodes[j].pos;
                    let has_edge = self.adj[i].iter().any(|(n, _)| n.0 as usize == j);
                    let visible = self.visible_naive(pa, pb);
                    if has_edge != visible {
                        return Err(format!(
                            "edge {i}-{j} present={has_edge} but visible={visible} ({pa} -> {pb})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}
