//! Lazy A*-guided visibility search.
//!
//! [`VisibilityGraph`](crate::VisibilityGraph) *materializes* every
//! visibility edge: each `add_obstacle` re-checks all existing edges
//! against the newcomer and sweeps from every new vertex, so growing a
//! local graph to `n` obstacles costs Θ(n² log n) even when the final
//! query only ever walks a thin corridor of it. That is the right trade
//! when many shortest-path expansions reuse one graph (the OR range
//! query's single-source expansion), but for *point-to-point* distances
//! most of those edges are never relaxed.
//!
//! [`LazyScene`] keeps the opposite end of the trade: obstacles are
//! registered **without any edge computation** (only the pivot-independent
//! point classifications of [`sweep::classify`] are maintained), and
//! successor edges come into existence on demand — when A\* pops a node
//! from its frontier, *then* one rotational sweep from that node computes
//! its visible set. Guided by the Euclidean heuristic (admissible and
//! consistent, since `d_E ≤ d_O` and edge weights are Euclidean lengths),
//! A\* settles only nodes whose `g + h` does not exceed the obstructed
//! distance — the nodes inside the ellipse with foci at the endpoints and
//! major axis `d_O(p, q)` — so the number of sweeps is proportional to the
//! corridor the path actually explores, not to the scene.
//!
//! Two further refinements keep each sweep *local*:
//!
//! * sweeps are **windowed and wedge-refined**: a base sweep covers only
//!   the obstacles within a few mean obstacle diameters of the pivot and
//!   reports the *horizon arcs* it could not certify as blocked; each
//!   open arc is then re-swept independently over just the obstacles in
//!   its angular wedge at geometrically growing radius, until it closes
//!   or provably faces no farther scene obstacle (sight lines from a
//!   pivot are radial, so wedge-local blockers are sufficient). A street
//!   canyon costs a few thin wedge sweeps instead of a scene-wide one;
//! * successor lists are cached per node and revalidated geometrically
//!   when the scene grows: a list survives unless a new obstacle entered
//!   its base window or a refined horizon arc. Repeated searches — the
//!   fixpoint iterations of Fig. 8, or consecutive candidates of an ONN
//!   query — therefore pay each sweep once.

use crate::dijkstra::PathResult;
use crate::graph::{EdgeBuilder, NodeId, NodeKind, ObstacleId};
use crate::sweep::{self, PointClass};
use obstacle_geom::{pseudo_angle, Point, Polygon, Rect, Segment};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered f64 for the A* frontier (keys are finite, non-NaN).
#[derive(Clone, Copy, PartialEq)]
struct D(f64);
impl Eq for D {}
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        obstacle_geom::total_cmp(self.0, other.0)
    }
}

/// Deterministic total order on node *positions*, used as the frontier
/// tie-break ahead of the node id. Exact key ties (two equal-length
/// shortest paths on a symmetric scene) then resolve by geometry rather
/// than by insertion order, so search results are identical between a
/// fresh scene and a reused one whose node numbering differs — the
/// invariant the cross-query scene cache of `obstacle_core::batch`
/// relies on. (Raw bit patterns are not a geometric order; they are just
/// a stable one, which is all a tie-break needs.)
fn pos_key(p: Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

/// Min-frontier over `(key, position tie-break, node id)` used by both
/// search loops.
type Frontier = BinaryHeap<Reverse<(D, (u64, u64), u32)>>;

#[derive(Clone, Debug)]
struct LazyNode {
    pos: Point,
    kind: NodeKind,
    alive: bool,
    /// Pivot-independent classification; maintained for waypoints only
    /// (obstacle-vertex classifications live in `vertex_class` so sweeps
    /// can borrow them as slices).
    class: PointClass,
}

/// Trust metadata for one horizon arc of a cached successor list:
/// within the CCW arc `(a0, a1)` (pseudo-angle units) the node's
/// visibility was certified out to distance `r`; `open` marks arcs that
/// were accepted because no scene obstacle lay beyond (so *any* new
/// obstacle there invalidates the cache).
#[derive(Clone, Copy, Debug)]
struct ArcTrust {
    a0: f64,
    a1: f64,
    r: f64,
    open: bool,
}

/// Cached successor list of one node: the obstacle vertices visible from
/// it, with Euclidean edge weights.
#[derive(Clone, Debug)]
struct CacheSlot {
    /// Obstacle count of the scene when the list was computed
    /// (`usize::MAX` = never). A list computed against fewer obstacles
    /// can survive scene growth: it stays valid as long as no later
    /// obstacle enters the base window or a refined horizon arc.
    n_obs: usize,
    /// Base window radius the successors were certified under in every
    /// direction; `f64::INFINITY` = a full-scene sweep (no window).
    radius: f64,
    /// Refined horizon arcs beyond the base radius.
    arcs: Vec<ArcTrust>,
    succ: Vec<(NodeId, f64)>,
}

const NEVER: usize = usize::MAX;

impl Default for CacheSlot {
    fn default() -> Self {
        CacheSlot {
            n_obs: NEVER,
            radius: 0.0,
            arcs: Vec::new(),
            succ: Vec::new(),
        }
    }
}

/// Angular padding (pseudo-angle units) for conservative wedge overlap
/// tests: a false overlap only grows a window, never breaks soundness.
const ARC_PAD: f64 = 1e-7;

/// CCW length of an arc, treating a degenerate `(a, a)` arc as the full
/// circle (a single event group's wrap-around arc spans the whole
/// rotation).
fn arc_len(arc: (f64, f64)) -> f64 {
    let l = (arc.1 - arc.0).rem_euclid(4.0);
    if l == 0.0 {
        4.0
    } else {
        l
    }
}

/// Whether the CCW arc and the CCW span (both in pseudo-angle units)
/// overlap on the circle (conservatively padded).
fn arc_overlap(arc: (f64, f64), span: (f64, f64)) -> bool {
    let len = arc_len(arc);
    let span_len = span.1 - span.0; // ≥ 0, < 2 by construction
    let off = (span.0 - arc.0).rem_euclid(4.0);
    off <= len + ARC_PAD || off + span_len >= 4.0 - ARC_PAD
}

/// Angular span of `rect` as seen from `pivot`, as a CCW pseudo-angle
/// interval; `None` means "treat as the full circle" (pivot inside or
/// touching the rectangle, or a span too wide to bound reliably).
fn rect_span(pivot: Point, rect: &Rect) -> Option<(f64, f64)> {
    if rect.contains_point(pivot) {
        return None;
    }
    let corners = rect.corners();
    let base = pseudo_angle(corners[0].x - pivot.x, corners[0].y - pivot.y);
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for c in &corners[1..] {
        let a = pseudo_angle(c.x - pivot.x, c.y - pivot.y);
        let mut d = (a - base).rem_euclid(4.0);
        if d > 2.0 {
            d -= 4.0;
        }
        lo = lo.min(d);
        hi = hi.max(d);
    }
    if hi - lo >= 2.0 {
        return None; // ≥ half a turn: pivot effectively enclosed
    }
    Some((base + lo, base + hi))
}

/// A scene of obstacles and waypoints supporting lazy A\* shortest-path
/// queries (see the module docs for the lazy-vs-materialized trade-off).
///
/// Node ids are shared with [`VisibilityGraph`](crate::VisibilityGraph)'s
/// [`NodeId`] space semantics: obstacle vertices are permanent, waypoints
/// support add/remove. Unlike the materialized graph there is no
/// adjacency structure to maintain — `add_obstacle` is O(|scene|) for the
/// classification updates and nothing else.
#[derive(Clone, Debug, Default)]
pub struct LazyScene {
    builder: EdgeBuilder,
    polys: Vec<Polygon>,
    tags: Vec<u64>,
    /// Obstacle bounding boxes (parallel to `polys`): the window
    /// selection and cache-invalidation geometry.
    rects: Vec<Rect>,
    /// Sum of bbox diagonals — `sum_diag / len` seeds window radii.
    sum_diag: f64,
    /// Per-obstacle, per-vertex classifications (parallel to `polys`).
    vertex_class: Vec<Vec<PointClass>>,
    /// Node ids of each obstacle's vertices, in polygon order.
    vertex_nodes: Vec<Vec<NodeId>>,
    nodes: Vec<LazyNode>,
    cache: Vec<CacheSlot>,
    sweeps: usize,
    /// Packed bbox-tree over obstacle MBRs: window and wedge candidate
    /// selection without scanning the whole scene.
    grid: BboxTree,
}

impl LazyScene {
    /// Creates an empty scene computing successors with `builder`.
    pub fn new(builder: EdgeBuilder) -> Self {
        LazyScene {
            builder,
            ..Default::default()
        }
    }

    /// The successor builder in use.
    pub fn builder(&self) -> EdgeBuilder {
        self.builder
    }

    /// Number of live nodes (obstacle vertices plus live waypoints).
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total node slots ever allocated, dead waypoints included. Search
    /// working arrays are sized by this, so a long-lived scene with heavy
    /// waypoint churn (a cross-query scene cache) should be retired once
    /// slots dwarf [`LazyScene::node_count`].
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.polys.len()
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.0 as usize].pos
    }

    /// Kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0 as usize].kind
    }

    /// Total visibility computations (sweeps or naive scans) performed so
    /// far — the dominant cost of lazy search; exposed for benchmarks and
    /// the laziness regression tests.
    pub fn sweep_count(&self) -> usize {
        self.sweeps
    }

    /// Iterator over obstacles as `(id, tag, polygon)`.
    pub fn obstacles(&self) -> impl Iterator<Item = (ObstacleId, u64, &Polygon)> {
        self.polys
            .iter()
            .enumerate()
            .map(|(i, p)| (ObstacleId(i as u32), self.tags[i], p))
    }

    /// Registers an obstacle. O(|scene|) classification bookkeeping, no
    /// edge computation — the lazy counterpart of
    /// [`VisibilityGraph::add_obstacle`](crate::VisibilityGraph::add_obstacle).
    pub fn add_obstacle(&mut self, poly: Polygon, tag: u64) -> ObstacleId {
        let new_idx = self.polys.len();

        // The newcomer may add boundary attachments (or interior
        // containment) to every existing classification.
        for (slot, poly_slot) in self.vertex_class.iter_mut().zip(&self.polys) {
            for (vi, class) in slot.iter_mut().enumerate() {
                sweep::classify_incremental(class, new_idx, &poly, poly_slot.vertices()[vi]);
            }
        }
        for node in &mut self.nodes {
            if node.alive && matches!(node.kind, NodeKind::Waypoint { .. }) {
                sweep::classify_incremental(&mut node.class, new_idx, &poly, node.pos);
            }
        }

        // Classify the new vertices against the complete scene (itself
        // included) and register their nodes.
        let ob_id = ObstacleId(new_idx as u32);
        let scene: Vec<&Polygon> = self.polys.iter().collect();
        let vertex_class: Vec<PointClass> = poly
            .vertices()
            .iter()
            .map(|&v| {
                let mut c = sweep::classify(&scene, v);
                sweep::classify_incremental(&mut c, new_idx, &poly, v);
                c
            })
            .collect();
        drop(scene);
        let mut node_ids = Vec::with_capacity(poly.len());
        for (vi, &v) in poly.vertices().iter().enumerate() {
            node_ids.push(self.push_raw_node(
                v,
                NodeKind::ObstacleVertex {
                    obstacle: ob_id,
                    vertex: vi as u32,
                },
                PointClass::default(),
            ));
        }
        self.vertex_class.push(vertex_class);
        self.vertex_nodes.push(node_ids);
        let bbox = poly.bbox();
        self.sum_diag += bbox.min.dist(bbox.max);
        self.rects.push(bbox);
        self.polys.push(poly);
        self.tags.push(tag);
        ob_id
    }

    /// Adds a free waypoint (query point or entity) and returns its node
    /// id. O(|scene|) for the classification; no edges are computed.
    pub fn add_waypoint(&mut self, pos: Point, tag: u64) -> NodeId {
        let scene: Vec<&Polygon> = self.polys.iter().collect();
        let class = sweep::classify(&scene, pos);
        drop(scene);
        self.push_raw_node(pos, NodeKind::Waypoint { tag }, class)
    }

    /// Removes a waypoint. Panics if `id` is an obstacle vertex. Cached
    /// successor lists of other nodes are unaffected (they never contain
    /// waypoints).
    pub fn remove_waypoint(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.0 as usize];
        assert!(
            matches!(node.kind, NodeKind::Waypoint { .. }),
            "remove_waypoint on an obstacle vertex"
        );
        node.alive = false;
        self.cache[id.0 as usize] = CacheSlot::default();
    }

    /// Whether the straight segment `a`–`b` crosses no obstacle interior
    /// (the authoritative pairwise test, identical to
    /// [`VisibilityGraph::visible_naive`](crate::VisibilityGraph::visible_naive)).
    pub fn visible(&self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let s = Segment::new(a, b);
        !self.polys.iter().any(|p| p.blocks_segment(s))
    }

    /// [`LazyScene::visible`] through the bbox-tree: only obstacles whose
    /// MBR meets the segment's bounding box are tested exactly, so the
    /// cost tracks the segment's neighbourhood rather than the scene —
    /// the difference matters once a long-lived scene (a cross-query
    /// cache) has absorbed far more obstacles than any one query touches.
    fn visible_indexed(&mut self, a: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        self.ensure_grid();
        let s = Segment::new(a, b);
        let sb = Rect::new(a, b);
        !self.grid.visit(
            &self.rects,
            |mbr| mbr.intersects(&sb),
            |oi| self.polys[oi].blocks_segment(s),
        )
    }

    /// A\* shortest path from `from` to `to` over the current scene, or
    /// `None` when unreachable.
    ///
    /// Unreachability over a *partial* scene is definitive for every
    /// superset: by \[LW79\] the visibility graph over a scene (all of its
    /// obstacle vertices present) connects two free points exactly when
    /// the scene's free space does, and adding obstacles only removes
    /// free space. Callers growing a scene to the Fig. 8 fixpoint may
    /// therefore stop at the first failed search.
    pub fn astar(&mut self, from: NodeId, to: NodeId) -> Option<PathResult> {
        let fp = self.nodes[from.0 as usize].pos;
        let tp = self.nodes[to.0 as usize].pos;
        if from == to {
            return Some(PathResult {
                distance: 0.0,
                points: vec![fp],
            });
        }

        // Edges *into* the target. Vertex successor lists only contain
        // obstacle vertices, so a waypoint target needs its own (cached)
        // sweep: visibility is symmetric, so the set of nodes that see
        // `to` is the set `to` sees. A vertex target is already covered.
        let n = self.nodes.len();
        let mut to_target = vec![false; n];
        if matches!(self.nodes[to.0 as usize].kind, NodeKind::Waypoint { .. }) {
            self.ensure_successors(to);
            for &(v, _) in &self.cache[to.0 as usize].succ {
                to_target[v.0 as usize] = true;
            }
            if matches!(self.nodes[from.0 as usize].kind, NodeKind::Waypoint { .. }) {
                // Waypoint-to-waypoint: the one edge no sweep reports.
                to_target[from.0 as usize] = self.visible_indexed(fp, tp);
            }
        }

        let mut g = vec![f64::INFINITY; n];
        let mut pred = vec![u32::MAX; n];
        let mut closed = vec![false; n];
        let mut heap: Frontier = BinaryHeap::new();
        g[from.0 as usize] = 0.0;
        heap.push(Reverse((D(fp.dist(tp)), pos_key(fp), from.0)));

        while let Some(Reverse((_, _, u))) = heap.pop() {
            if closed[u as usize] {
                continue; // stale frontier entry
            }
            closed[u as usize] = true;
            if u == to.0 {
                break;
            }
            self.ensure_successors(NodeId(u));
            let gu = g[u as usize];
            for &(v, w) in &self.cache[u as usize].succ {
                let vi = v.0 as usize;
                let nd = gu + w;
                if nd < g[vi] {
                    g[vi] = nd;
                    pred[vi] = u;
                    let vp = self.nodes[vi].pos;
                    heap.push(Reverse((D(nd + vp.dist(tp)), pos_key(vp), v.0)));
                }
            }
            if to_target[u as usize] {
                let nd = gu + self.nodes[u as usize].pos.dist(tp);
                let ti = to.0 as usize;
                if nd < g[ti] {
                    g[ti] = nd;
                    pred[ti] = u;
                    heap.push(Reverse((D(nd), pos_key(tp), to.0)));
                }
            }
        }

        if g[to.0 as usize].is_infinite() {
            return None;
        }
        let mut points = vec![tp];
        let mut cur = to.0;
        while cur != from.0 {
            cur = pred[cur as usize];
            debug_assert_ne!(cur, u32::MAX);
            points.push(self.nodes[cur as usize].pos);
        }
        points.reverse();
        Some(PathResult {
            distance: g[to.0 as usize],
            points,
        })
    }

    /// A\* distance only (see [`LazyScene::astar`]).
    pub fn astar_distance(&mut self, from: NodeId, to: NodeId) -> Option<f64> {
        self.astar(from, to).map(|p| p.distance)
    }

    /// All of `targets` (plus any obstacle vertices settled on the way)
    /// within obstructed distance `radius` of `from`, reported as
    /// `(node, distance)` in ascending distance order — the lazy
    /// counterpart of [`bounded_expansion`](crate::bounded_expansion)
    /// over a materialized graph, and the engine of the OR range query.
    ///
    /// The caller must have absorbed every obstacle intersecting the disk
    /// of radius `radius` around `from` (a single R-tree range does it:
    /// the region is known up front, unlike the point-to-point fixpoint).
    /// One Dijkstra expansion then settles nodes in ascending obstructed
    /// distance, sweeping visibility only from nodes it actually pops —
    /// nodes outside the radius are never swept.
    ///
    /// Waypoint targets never appear in vertex successor lists, so each
    /// target contributes its own (cached) sweep: visibility is
    /// symmetric, hence the set of nodes a target sees is the set that
    /// sees it. Shortest obstructed paths only turn at obstacle vertices,
    /// so targets never need to relay to each other.
    pub fn bounded_expansion(
        &mut self,
        from: NodeId,
        radius: f64,
        targets: &[NodeId],
    ) -> Vec<(NodeId, f64)> {
        let fp = self.nodes[from.0 as usize].pos;
        let n = self.nodes.len();
        // Incoming edges into each waypoint target, keyed by source node.
        let mut into: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &t in targets {
            if t == from || !matches!(self.nodes[t.0 as usize].kind, NodeKind::Waypoint { .. }) {
                continue; // vertex targets are reached by normal expansion
            }
            let tp = self.nodes[t.0 as usize].pos;
            self.ensure_successors(t);
            for &(v, w) in &self.cache[t.0 as usize].succ {
                into[v.0 as usize].push((t.0, w));
            }
            // The one edge no sweep reports: straight from the source.
            let d = fp.dist(tp);
            if d <= radius && self.visible_indexed(fp, tp) {
                into[from.0 as usize].push((t.0, d));
            }
        }

        let mut dist = vec![f64::INFINITY; n];
        let mut settled = Vec::new();
        let mut heap: Frontier = BinaryHeap::new();
        dist[from.0 as usize] = 0.0;
        heap.push(Reverse((D(0.0), pos_key(fp), from.0)));
        while let Some(Reverse((D(d), _, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale frontier entry
            }
            settled.push((NodeId(u), d));
            // Settled waypoints other than the source never relay: a
            // shortest path never needs to turn at a free point, and
            // sweeping from them would waste one sweep per target.
            let relays =
                u == from.0 || !matches!(self.nodes[u as usize].kind, NodeKind::Waypoint { .. });
            if relays {
                self.ensure_successors(NodeId(u));
                for &(v, w) in &self.cache[u as usize].succ {
                    let nd = d + w;
                    if nd <= radius && nd < dist[v.0 as usize] {
                        dist[v.0 as usize] = nd;
                        heap.push(Reverse((D(nd), pos_key(self.nodes[v.0 as usize].pos), v.0)));
                    }
                }
            }
            for &(v, w) in &into[u as usize] {
                let nd = d + w;
                if nd <= radius && nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((D(nd), pos_key(self.nodes[v as usize].pos), v)));
                }
            }
        }
        settled
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    fn push_raw_node(&mut self, pos: Point, kind: NodeKind, class: PointClass) -> NodeId {
        self.nodes.push(LazyNode {
            pos,
            kind,
            alive: true,
            class,
        });
        self.cache.push(CacheSlot::default());
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Fills (or refreshes) the successor cache of `id`.
    ///
    /// A stale cache (computed against fewer obstacles) is revalidated
    /// geometrically before any sweep: it survives if no obstacle added
    /// since entered the node's base window (it could block or extend a
    /// trusted edge) nor any refined horizon arc (it could host a newly
    /// visible far vertex). Otherwise the successors are recomputed via
    /// `windowed_successors`.
    fn ensure_successors(&mut self, id: NodeId) {
        let i = id.0 as usize;
        let n = self.polys.len();
        let slot = &self.cache[i];
        if slot.n_obs == n {
            return;
        }
        if slot.n_obs != NEVER && self.cache_still_valid(i) {
            self.cache[i].n_obs = n;
            return;
        }
        let slot = match self.builder {
            EdgeBuilder::Naive => {
                self.sweeps += 1;
                CacheSlot {
                    n_obs: n,
                    radius: f64::INFINITY,
                    arcs: Vec::new(),
                    succ: self.visible_vertices_naive(id),
                }
            }
            EdgeBuilder::RotationalSweep => self.windowed_successors(id),
        };
        self.cache[i] = slot;
    }

    /// Whether the cached (stale-epoch) successor list of node `i` is
    /// unaffected by the obstacles added after it was computed.
    fn cache_still_valid(&self, i: usize) -> bool {
        let slot = &self.cache[i];
        if !slot.radius.is_finite() {
            // Full-scene (or naive) snapshot: any growth invalidates.
            return false;
        }
        let pos = self.nodes[i].pos;
        let pad = slot.radius * (1.0 + 1e-12);
        self.rects[slot.n_obs..].iter().all(|rect| {
            if rect.mindist_point(pos) <= pad {
                return false; // entered the base window
            }
            if slot.arcs.is_empty() {
                return true; // horizon closed at the base radius
            }
            let span = rect_span(pos, rect);
            slot.arcs.iter().all(|arc| {
                let hit = match span {
                    Some(span) => arc_overlap((arc.a0, arc.a1), span),
                    None => true,
                };
                !hit || (!arc.open && rect.mindist_point(pos) > arc.r)
            })
        })
    }

    /// Base-plus-wedges successor computation (see `ensure_successors`
    /// and the module docs).
    ///
    /// One rotational sweep over the obstacles within a small base
    /// radius gives the near successors and the open horizon arcs. Each
    /// open arc is then *refined independently*: sight lines from the
    /// pivot are radial, so a wedge's visibility only depends on the
    /// obstacles inside the wedge — the arc is re-swept (range-restricted)
    /// at doubling radius over just those obstacles until it closes or
    /// provably faces no farther scene obstacle. Street canyons thus cost
    /// a few thin wedge sweeps instead of inflating the whole disk.
    fn windowed_successors(&mut self, id: NodeId) -> CacheSlot {
        let i = id.0 as usize;
        let n = self.polys.len();
        let pos = self.nodes[i].pos;
        if n == 0 {
            return CacheSlot {
                n_obs: 0,
                radius: f64::INFINITY,
                arcs: Vec::new(),
                succ: Vec::new(),
            };
        }
        self.ensure_grid();
        let pivot_vertex = match self.nodes[i].kind {
            NodeKind::ObstacleVertex { obstacle, vertex } => {
                Some((obstacle.0 as usize, vertex as usize))
            }
            NodeKind::Waypoint { .. } => None,
        };
        let mean_diag = self.mean_diag();
        let extent = self.grid.bounds.maxdist_point(pos);

        // ---- Base disk: grow only until it contains some obstacle.
        let mut r = (6.0 * mean_diag).min(extent).max(1e-12);
        let mut active: Vec<usize>;
        loop {
            active = self.grid.query_disk(&self.rects, pos, r);
            if !active.is_empty() || r >= extent {
                break;
            }
            r *= 4.0;
        }
        let full = active.len() == n;
        let window = if full { f64::INFINITY } else { r };
        let wv = sweep::visible_set_windowed(
            &self.polys,
            &self.vertex_class,
            &active,
            pos,
            self.pivot_class(id),
            pivot_vertex,
            window,
            None,
        );
        self.sweeps += 1;
        let mut succ: Vec<(NodeId, f64)> = Vec::new();
        self.collect_successors(id, &active, &wv.vertices, 0.0, window, &mut succ);
        if full {
            return CacheSlot {
                n_obs: n,
                radius: f64::INFINITY,
                arcs: Vec::new(),
                succ,
            };
        }

        // ---- Wedge refinement of every open horizon arc. Work items
        // never wrap past the +x axis (split on creation) so the ranged
        // sweep can use plain angular order.
        let mut arcs: Vec<ArcTrust> = Vec::new();
        let mut work: Vec<(f64, f64, f64, usize)> = Vec::new(); // a0, a1, r, root
        let push_split =
            |work: &mut Vec<(f64, f64, f64, usize)>, a0: f64, a1: f64, r: f64, root: usize| {
                if a0 < a1 {
                    work.push((a0, a1, r, root));
                } else if a0 > a1 {
                    // wraps past the +x axis: split there
                    work.push((a0, 4.0, r, root));
                    work.push((0.0, a1, r, root));
                }
                // a0 == a1: zero-width arc (e.g. collapsed by clamping
                // to a sub-range) — nothing to refine. Full-circle arcs
                // are normalized to (0, 4) before they reach here.
            };
        for &(a0, a1) in &wv.open {
            // An unranged sweep reports a full-circle horizon (single
            // event group) as the degenerate wrap arc (a, a).
            let (a0, a1) = if a0 == a1 { (0.0, 4.0) } else { (a0, a1) };
            let root = arcs.len();
            arcs.push(ArcTrust {
                a0,
                a1,
                r,
                open: false,
            });
            push_split(&mut work, a0, a1, r, root);
        }
        while let Some((a0, a1, r_arc, root)) = work.pop() {
            // Does any scene obstacle reach beyond r_arc inside the arc?
            let r_next = (r_arc * 3.0).min(extent * 1.0001);
            let pad = ARC_PAD * (1.0 + a1 - a0);
            let range = ((a0 - pad).max(0.0), (a1 + pad).min(4.0));
            let beyond = self
                .grid
                .wedge_reaches_beyond(&self.rects, pos, r_arc, range);
            if !beyond {
                // Nothing farther in this wedge: trusted as-is, but any
                // new obstacle appearing here invalidates the cache.
                arcs[root].open = true;
                continue;
            }
            let wedge = self.grid.query_wedge(&self.rects, pos, r_next, range);
            let wv = sweep::visible_set_windowed(
                &self.polys,
                &self.vertex_class,
                &wedge,
                pos,
                self.pivot_class(id),
                pivot_vertex,
                r_next,
                Some(range),
            );
            self.sweeps += 1;
            // Trust band (r_arc, r_next]: nearer in-wedge vertices were
            // already reported by the parent sweep.
            self.collect_successors(id, &wedge, &wv.vertices, r_arc, r_next, &mut succ);
            arcs[root].r = arcs[root].r.max(r_next);
            for &(b0, b1) in &wv.open {
                if r_next >= extent {
                    // The wedge already covers the whole scene: an open
                    // sub-arc faces empty space.
                    arcs[root].open = true;
                } else {
                    push_split(&mut work, b0.max(range.0), b1.min(range.1), r_next, root);
                }
            }
        }

        // Duplicate successors can arise where padded wedges overlap.
        succ.sort_unstable_by_key(|(nid, _)| nid.0);
        succ.dedup_by_key(|(nid, _)| nid.0);
        CacheSlot {
            n_obs: n,
            radius: r,
            arcs,
            succ,
        }
    }

    /// Appends the visible vertices of `active` obstacles whose distance
    /// falls in `(lo, hi]` (with `lo = 0.0` meaning inclusive of zero) to
    /// `succ`.
    #[allow(clippy::too_many_arguments)]
    fn collect_successors(
        &self,
        id: NodeId,
        active: &[usize],
        flags: &[Vec<bool>],
        lo: f64,
        hi: f64,
        succ: &mut Vec<(NodeId, f64)>,
    ) {
        let pos = self.nodes[id.0 as usize].pos;
        for (ai, flags) in flags.iter().enumerate() {
            let nodes = &self.vertex_nodes[active[ai]];
            for (vi, &visible) in flags.iter().enumerate() {
                if !visible {
                    continue;
                }
                let nid = nodes[vi];
                if nid == id {
                    continue;
                }
                let d = pos.dist(self.nodes[nid.0 as usize].pos);
                if d <= hi && (d > lo || lo == 0.0) {
                    succ.push((nid, d));
                }
            }
        }
    }

    /// Mean obstacle bbox diagonal — the scene's natural length scale.
    fn mean_diag(&self) -> f64 {
        if self.polys.is_empty() {
            0.0
        } else {
            self.sum_diag / self.polys.len() as f64
        }
    }

    /// (Re)builds the packed bbox-tree over the obstacle MBRs. Obstacles
    /// are absorbed in batches between searches, so this runs a handful
    /// of times per query — O(n log n) each, amortized negligible.
    fn ensure_grid(&mut self) {
        if self.grid.built != self.rects.len() {
            self.grid = BboxTree::build(&self.rects);
        }
    }

    fn pivot_class(&self, id: NodeId) -> &PointClass {
        match self.nodes[id.0 as usize].kind {
            NodeKind::ObstacleVertex { obstacle, vertex } => {
                &self.vertex_class[obstacle.0 as usize][vertex as usize]
            }
            NodeKind::Waypoint { .. } => &self.nodes[id.0 as usize].class,
        }
    }

    fn visible_vertices_naive(&self, id: NodeId) -> Vec<(NodeId, f64)> {
        let pivot = self.nodes[id.0 as usize].pos;
        let mut out = Vec::new();
        for nodes in &self.vertex_nodes {
            for &nid in nodes {
                if nid == id {
                    continue;
                }
                let pos = self.nodes[nid.0 as usize].pos;
                if self.visible(pivot, pos) {
                    out.push((nid, pivot.dist(pos)));
                }
            }
        }
        out
    }

    /// Structural (and, with `check_semantics`, semantic) consistency
    /// check for tests: classifications match a from-scratch recompute,
    /// and every *fresh* successor cache equals the naive visibility
    /// oracle restricted to obstacle vertices.
    pub fn validate(&self, check_semantics: bool) -> Result<(), String> {
        let scene: Vec<&Polygon> = self.polys.iter().collect();
        for (oi, slot) in self.vertex_class.iter().enumerate() {
            for (vi, class) in slot.iter().enumerate() {
                let expect = sweep::classify(&scene, self.polys[oi].vertices()[vi]);
                if *class != expect {
                    return Err(format!("stale classification for vertex {vi} of {oi}"));
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.alive && matches!(node.kind, NodeKind::Waypoint { .. }) {
                let expect = sweep::classify(&scene, node.pos);
                if node.class != expect {
                    return Err(format!("stale classification for waypoint node {i}"));
                }
            }
        }
        if check_semantics {
            for (i, slot) in self.cache.iter().enumerate() {
                if slot.n_obs != self.polys.len() {
                    continue; // stale or never computed: exempt
                }
                let mut expect = self.visible_vertices_naive(NodeId(i as u32));
                let mut got = slot.succ.clone();
                expect.sort_by_key(|(n, _)| n.0);
                got.sort_by_key(|(n, _)| n.0);
                let expect_ids: Vec<u32> = expect.iter().map(|(n, _)| n.0).collect();
                let got_ids: Vec<u32> = got.iter().map(|(n, _)| n.0).collect();
                if expect_ids != got_ids {
                    return Err(format!(
                        "successor cache of node {i} disagrees with the naive oracle: \
                         {got_ids:?} vs {expect_ids:?}"
                    ));
                }
                for ((n, w), (_, we)) in got.iter().zip(expect.iter()) {
                    if (w - we).abs() > 1e-9 {
                        return Err(format!("edge {i}-{} weight {w} != {we}", n.0));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Packed STR bbox-tree over the obstacle MBRs: rects are sorted into
/// vertical slabs by centre (Sort-Tile-Recursive), grouped bottom-up
/// into fanout-sized runs, and queried with mindist / angular-span
/// pruning. Rebuilt from scratch when the scene grows — absorption
/// happens in a handful of batches per query, so rebuilds amortize to
/// nothing while every lookup stays O(log n + hits).
#[derive(Clone, Debug)]
struct BboxTree {
    /// Obstacle id per leaf slot (STR order).
    leaf_id: Vec<u32>,
    /// `levels[0][g]` = MBR of leaves `[g·F, (g+1)·F)`; each higher level
    /// groups the previous one the same way. The last level is the root.
    levels: Vec<Vec<Rect>>,
    /// Union of all rects (query horizon bound).
    bounds: Rect,
    /// Number of obstacles indexed (staleness check).
    built: usize,
}

impl Default for BboxTree {
    fn default() -> Self {
        BboxTree {
            leaf_id: Vec::new(),
            levels: Vec::new(),
            bounds: Rect::empty(),
            built: 0,
        }
    }
}

const TREE_FAN: usize = 8;

impl BboxTree {
    fn build(rects: &[Rect]) -> BboxTree {
        let n = rects.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        if n == 0 {
            return BboxTree::default();
        }
        // STR packing: slabs by centre x, each slab sorted by centre y.
        let slabs = ((n as f64 / TREE_FAN as f64).sqrt().ceil() as usize).max(1);
        let per_slab = n.div_ceil(slabs);
        ids.sort_unstable_by(|&a, &b| {
            let ca = rects[a as usize].center();
            let cb = rects[b as usize].center();
            ca.x.total_cmp(&cb.x)
        });
        for chunk in ids.chunks_mut(per_slab) {
            chunk.sort_unstable_by(|&a, &b| {
                let ca = rects[a as usize].center();
                let cb = rects[b as usize].center();
                ca.y.total_cmp(&cb.y)
            });
        }
        let mut bounds = Rect::empty();
        for r in rects {
            bounds = bounds.union(r);
        }
        let group = |mbrs: &[Rect]| -> Vec<Rect> {
            mbrs.chunks(TREE_FAN)
                .map(|c| c.iter().fold(Rect::empty(), |acc, r| acc.union(r)))
                .collect()
        };
        let leaf_mbrs: Vec<Rect> = ids.iter().map(|&i| rects[i as usize]).collect();
        // Accumulate bottom-up in `top` so no level is ever re-fetched
        // from the vec (Option-free; `top` is non-empty by construction).
        let mut levels = Vec::new();
        let mut top = group(&leaf_mbrs);
        while top.len() > 1 {
            let next = group(&top);
            levels.push(top);
            top = next;
        }
        levels.push(top);
        BboxTree {
            leaf_id: ids,
            levels,
            bounds,
            built: n,
        }
    }

    /// Visits every obstacle whose MBR passes `prune` (a conservative
    /// subtree test that must also hold for individual rects), calling
    /// `leaf` until it returns `true` (early exit).
    fn visit(
        &self,
        rects: &[Rect],
        prune: impl Fn(&Rect) -> bool,
        mut leaf: impl FnMut(usize) -> bool,
    ) -> bool {
        if self.leaf_id.is_empty() {
            return false;
        }
        let top = self.levels.len() - 1;
        let mut stack: Vec<(usize, usize)> = (0..self.levels[top].len())
            .filter(|&g| prune(&self.levels[top][g]))
            .map(|g| (top, g))
            .collect();
        while let Some((level, g)) = stack.pop() {
            let lo = g * TREE_FAN;
            if level == 0 {
                let hi = ((g + 1) * TREE_FAN).min(self.leaf_id.len());
                for &oi in &self.leaf_id[lo..hi] {
                    if prune(&rects[oi as usize]) && leaf(oi as usize) {
                        return true;
                    }
                }
            } else {
                let below = &self.levels[level - 1];
                let hi = ((g + 1) * TREE_FAN).min(below.len());
                for (off, mbr) in below[lo..hi].iter().enumerate() {
                    if prune(mbr) {
                        stack.push((level - 1, lo + off));
                    }
                }
            }
        }
        false
    }

    /// Obstacles whose MBR lies within Euclidean distance `r` of `pos`.
    fn query_disk(&self, rects: &[Rect], pos: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(
            rects,
            |mbr| mbr.mindist_point_sq(pos) <= r * r,
            |oi| {
                out.push(oi);
                false
            },
        );
        out
    }

    /// Obstacles whose MBR lies within distance `r` of `pos` with an
    /// angular span overlapping the CCW pseudo-angle interval `range`.
    fn query_wedge(&self, rects: &[Rect], pos: Point, r: f64, range: (f64, f64)) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(
            rects,
            |mbr| {
                mbr.mindist_point_sq(pos) <= r * r
                    && match rect_span(pos, mbr) {
                        Some(span) => arc_overlap(range, span),
                        None => true,
                    }
            },
            |oi| {
                out.push(oi);
                false
            },
        );
        out
    }

    /// Whether some obstacle MBR reaches beyond distance `r` of `pos`
    /// inside the angular interval `range` (early-exit existence query).
    fn wedge_reaches_beyond(&self, rects: &[Rect], pos: Point, r: f64, range: (f64, f64)) -> bool {
        self.visit(
            rects,
            |mbr| {
                mbr.maxdist_point(pos) > r
                    && match rect_span(pos, mbr) {
                        Some(span) => arc_overlap(range, span),
                        None => true,
                    }
            },
            |_| true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VisibilityGraph;
    use crate::{dijkstra_distance, shortest_path};
    use obstacle_geom::{Polygon, Rect};

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn lazy_with(
        builder: EdgeBuilder,
        obstacles: &[Polygon],
        a: Point,
        b: Point,
    ) -> (LazyScene, NodeId, NodeId) {
        let mut s = LazyScene::new(builder);
        for (i, p) in obstacles.iter().enumerate() {
            s.add_obstacle(p.clone(), i as u64);
        }
        let na = s.add_waypoint(a, 0);
        let nb = s.add_waypoint(b, 1);
        (s, na, nb)
    }

    #[test]
    fn empty_scene_is_euclidean() {
        let (mut s, a, b) = lazy_with(
            EdgeBuilder::RotationalSweep,
            &[],
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
        );
        let p = s.astar(a, b).unwrap();
        assert_eq!(p.distance, 5.0);
        assert_eq!(p.points.len(), 2);
    }

    #[test]
    fn detour_matches_materialized_graph() {
        let obstacles = vec![square(1.0, -1.0, 2.0, 1.0), square(4.0, -2.0, 5.0, 0.5)];
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 0.0);
        for builder in [EdgeBuilder::RotationalSweep, EdgeBuilder::Naive] {
            let (mut s, na, nb) = lazy_with(builder, &obstacles, a, b);
            let lazy = s.astar(na, nb).unwrap();
            let (full, wps) = VisibilityGraph::build(
                EdgeBuilder::Naive,
                obstacles.iter().cloned().zip(0u64..),
                [(a, 0), (b, 1)],
            );
            let exact = shortest_path(&full, wps[0], wps[1]).unwrap();
            assert!(
                (lazy.distance - exact.distance).abs() < 1e-12,
                "{} vs {}",
                lazy.distance,
                exact.distance
            );
            assert_eq!(lazy.points, exact.points);
            assert!(s.validate(true).is_ok());
        }
    }

    #[test]
    fn waypoint_inside_obstacle_is_unreachable() {
        let (mut s, a, b) = lazy_with(
            EdgeBuilder::RotationalSweep,
            &[square(0.0, 0.0, 1.0, 1.0)],
            Point::new(0.5, 0.5),
            Point::new(2.0, 2.0),
        );
        assert!(s.astar(a, b).is_none());
        assert!(s.astar(b, a).is_none());
    }

    #[test]
    fn waypoint_churn_keeps_vertex_caches_valid() {
        let obstacles = [square(1.0, -1.0, 2.0, 1.0)];
        let mut s = LazyScene::new(EdgeBuilder::RotationalSweep);
        s.add_obstacle(obstacles[0].clone(), 0);
        let q = s.add_waypoint(Point::new(0.0, 0.0), 0);

        let p1 = s.add_waypoint(Point::new(3.0, 0.0), 1);
        let d1 = s.astar_distance(p1, q).unwrap();
        let sweeps_after_first = s.sweep_count();
        s.remove_waypoint(p1);

        let p2 = s.add_waypoint(Point::new(3.0, 0.0), 2);
        let d2 = s.astar_distance(p2, q).unwrap();
        s.remove_waypoint(p2);

        assert!((d1 - d2).abs() < 1e-12);
        // Second run re-sweeps only the fresh waypoint p2: vertex and
        // target caches survive waypoint churn.
        assert_eq!(s.sweep_count(), sweeps_after_first + 1);
        assert!(s.validate(true).is_ok());
    }

    #[test]
    fn obstacle_insertion_invalidates_caches() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 0.0);
        let mut s = LazyScene::new(EdgeBuilder::RotationalSweep);
        s.add_obstacle(square(1.0, -1.0, 2.0, 1.0), 0);
        let na = s.add_waypoint(a, 0);
        let nb = s.add_waypoint(b, 1);
        let d1 = s.astar_distance(na, nb).unwrap();

        s.add_obstacle(square(4.0, -2.0, 5.0, 2.0), 1);
        let d2 = s.astar_distance(na, nb).unwrap();
        assert!(d2 > d1, "new wall must lengthen the path: {d1} vs {d2}");

        let (full, wps) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            [
                (square(1.0, -1.0, 2.0, 1.0), 0u64),
                (square(4.0, -2.0, 5.0, 2.0), 1),
            ],
            [(a, 0), (b, 1)],
        );
        let exact = dijkstra_distance(&full, wps[0], wps[1]).unwrap();
        assert!((d2 - exact).abs() < 1e-12);
        assert!(s.validate(true).is_ok());
    }

    #[test]
    fn vertex_endpoints_are_supported() {
        // Source and target as obstacle vertices (not waypoints).
        let mut s = LazyScene::new(EdgeBuilder::RotationalSweep);
        s.add_obstacle(square(0.0, 0.0, 1.0, 1.0), 0);
        s.add_obstacle(square(3.0, 0.0, 4.0, 1.0), 1);
        let from = s.vertex_nodes[0][0]; // (0, 0) corner? polygon order
        let to = s.vertex_nodes[1][2];
        let p = s.astar(from, to).unwrap();
        let (full, _) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            [
                (square(0.0, 0.0, 1.0, 1.0), 0u64),
                (square(3.0, 0.0, 4.0, 1.0), 1),
            ],
            std::iter::empty::<(Point, u64)>(),
        );
        // Locate the same positions in the full graph by brute force.
        let mut ids = (None, None);
        for i in 0..full.node_slots() {
            let pos = full.position(NodeId(i as u32));
            if pos == s.position(from) {
                ids.0 = Some(NodeId(i as u32));
            }
            if pos == s.position(to) {
                ids.1 = Some(NodeId(i as u32));
            }
        }
        let exact = dijkstra_distance(&full, ids.0.unwrap(), ids.1.unwrap()).unwrap();
        assert!((p.distance - exact).abs() < 1e-12);
    }

    #[test]
    fn bounded_expansion_matches_materialized_graph() {
        let obstacles = [
            square(1.0, -1.0, 2.0, 1.0),
            square(4.0, -2.0, 5.0, 0.5),
            square(2.5, 1.5, 3.5, 2.5),
        ];
        let q = Point::new(0.0, 0.0);
        let waypoints = [
            Point::new(3.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(0.5, 2.0),
            Point::new(4.5, -0.75), // strictly inside an obstacle
        ];
        for radius in [2.0, 5.0, 9.0] {
            let mut s = LazyScene::new(EdgeBuilder::RotationalSweep);
            for (i, p) in obstacles.iter().enumerate() {
                s.add_obstacle(p.clone(), i as u64);
            }
            let nq = s.add_waypoint(q, 1000);
            let targets: Vec<NodeId> = waypoints
                .iter()
                .enumerate()
                .map(|(i, &p)| s.add_waypoint(p, i as u64))
                .collect();
            let lazy = s.bounded_expansion(nq, radius, &targets);

            let (full, wps) = VisibilityGraph::build(
                EdgeBuilder::Naive,
                obstacles.iter().cloned().zip(0u64..),
                std::iter::once((q, 1000))
                    .chain(waypoints.iter().enumerate().map(|(i, &p)| (p, i as u64))),
            );
            let exact = crate::bounded_expansion(&full, wps[0], radius);

            // Compare by (position, distance): node ids differ between the
            // two structures.
            let key =
                |pos: Point, d: f64| (pos.x.to_bits(), pos.y.to_bits(), (d * 1e12).round() as i64);
            let mut a: Vec<_> = lazy.iter().map(|&(n, d)| key(s.position(n), d)).collect();
            let mut b: Vec<_> = exact
                .iter()
                .map(|&(n, d)| key(full.position(n), d))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "radius {radius}");
            // Ascending settle order.
            for w in lazy.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn laziness_settles_a_corridor_not_the_scene() {
        // A long row of separated blocks: the shortest path hugs the row,
        // and A* must not sweep from the far side of every block.
        let mut obstacles = Vec::new();
        for i in 0..40 {
            let x = i as f64;
            obstacles.push(square(x + 0.2, 0.2, x + 0.8, 5.0));
        }
        let (mut s, a, b) = lazy_with(
            EdgeBuilder::RotationalSweep,
            &obstacles,
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
        );
        let p = s.astar(a, b).unwrap();
        assert!(p.distance >= 40.0);
        // 160 vertices in the scene; the corridor along y≈0 touches the
        // two bottom corners of each block plus the endpoints.
        assert!(
            s.sweep_count() <= 110,
            "expected lazy exploration, swept {} times",
            s.sweep_count()
        );
    }
}
