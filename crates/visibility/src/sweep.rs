//! Rotational plane-sweep visibility \[SS84\].
//!
//! Computes, for one *pivot* point, the set of visible points among all
//! obstacle vertices and a set of free points, in O(n log n) for points in
//! general position: the points are processed in angular order around the
//! pivot while a *status* structure maintains the obstacle edges currently
//! crossed by the sweep ray, ordered by crossing distance.
//!
//! Point *classifications* (strictly-inside flags and boundary
//! attachments, the inputs of the interior-cone blocking tests) are
//! independent of the pivot, so callers that sweep from many pivots over
//! one scene — the visibility graph — compute them once via [`classify`]
//! and pass them to [`visible_set_prepared`]. The convenience wrapper
//! [`visible_set`] classifies internally.
//!
//! Correctness notes (matching [`Polygon::blocks_segment`] semantics —
//! obstacle interiors block, boundaries do not):
//!
//! * Edges only enter the status when *properly* crossed by the ray; edges
//!   collinear with the ray never block (walking along a wall is free).
//! * Interior passage through a polygon **vertex** or through a boundary
//!   point (e.g. the diagonal of a rectangle between opposite corners, or
//!   an entity standing on a wall) is not a proper edge crossing; it is
//!   caught by *interior-cone* tests derived from the point's boundary
//!   attachments — at the pivot, at the target, and, for chains of
//!   collinear events, at intermediate points.
//! * Points strictly inside an obstacle are never visible (and block the
//!   rest of their ray).
//! * Events on a common ray are processed near-to-far; once a point of
//!   the ray is blocked, every farther point is blocked too.

use obstacle_geom::{
    angular_cmp, orient2d, pseudo_angle, BoundaryAttachment, Orientation, Point, PointLocation,
    Polygon,
};

/// Result of a sweep: visibility flags for every obstacle vertex (outer
/// index = obstacle position in the input slice, inner = vertex index) and
/// every free point.
#[derive(Clone, Debug)]
pub struct VisibleSet {
    /// `vertices[o][v]` — whether vertex `v` of obstacle `o` is visible.
    pub vertices: Vec<Vec<bool>>,
    /// `free[i]` — whether free point `i` is visible.
    pub free: Vec<bool>,
}

/// Pivot-independent classification of a point against a scene: whether
/// it lies strictly inside some obstacle, and the boundary attachments
/// (obstacle index + vertex/edge location) it participates in.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointClass {
    /// Strictly inside some obstacle: never visible, blocks its ray.
    pub inside: bool,
    /// Obstacles whose boundary passes through this point.
    pub attachments: Vec<(usize, BoundaryAttachment)>,
}

/// Classifies `p` against every obstacle (bbox-prefiltered scan).
pub fn classify(obstacles: &[&Polygon], p: Point) -> PointClass {
    let mut class = PointClass::default();
    for (oi, poly) in obstacles.iter().enumerate() {
        if !poly.bbox().contains_point(p) {
            continue;
        }
        if let Some(at) = poly.boundary_attachment(p) {
            class.attachments.push((oi, at));
        } else if poly.locate(p) == PointLocation::Inside {
            class.inside = true;
            return class;
        }
    }
    class
}

/// Updates an existing classification for one newly added obstacle
/// (`oi` = its index in the scene).
pub fn classify_incremental(class: &mut PointClass, oi: usize, poly: &Polygon, p: Point) {
    if class.inside || !poly.bbox().contains_point(p) {
        return;
    }
    if let Some(at) = poly.boundary_attachment(p) {
        class.attachments.push((oi, at));
    } else if poly.locate(p) == PointLocation::Inside {
        class.inside = true;
    }
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    a: Point,
    b: Point,
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    /// Vertex `vertex` of `obstacles[obstacle]`.
    Vertex { obstacle: usize, vertex: usize },
    /// Free point with index into `free_points`.
    Free(usize),
}

#[derive(Clone, Copy, Debug)]
struct Event {
    pos: Point,
    kind: EventKind,
}

/// Whether a segment from a point with the given attachments towards
/// `toward` immediately enters the interior of an attached obstacle.
fn enters_interior(
    obstacles: &[&Polygon],
    attachments: &[(usize, BoundaryAttachment)],
    toward: Point,
) -> bool {
    attachments
        .iter()
        .any(|&(oi, at)| obstacles[oi].enters_interior_at_boundary(at, toward))
}

/// Convenience wrapper around [`visible_set_prepared`] that classifies
/// the pivot, every obstacle vertex and every free point on the fly.
///
/// `pivot_vertex`, when given as `(obstacle, vertex)`, marks the pivot as
/// that obstacle vertex (its own event is skipped). Free points may lie
/// anywhere, including on obstacle boundaries or inside obstacles. Points
/// coincident with the pivot are reported visible (zero-length sight
/// line).
pub fn visible_set(
    obstacles: &[&Polygon],
    pivot: Point,
    pivot_vertex: Option<(usize, usize)>,
    free_points: &[Point],
) -> VisibleSet {
    let mut pivot_class = classify(obstacles, pivot);
    if let Some((po, pv)) = pivot_vertex {
        if !pivot_class
            .attachments
            .contains(&(po, BoundaryAttachment::Vertex(pv)))
        {
            pivot_class
                .attachments
                .push((po, BoundaryAttachment::Vertex(pv)));
        }
    }
    let vertex_class: Vec<Vec<PointClass>> = obstacles
        .iter()
        .map(|poly| {
            poly.vertices()
                .iter()
                .map(|&v| classify(obstacles, v))
                .collect()
        })
        .collect();
    let vertex_class_refs: Vec<&[PointClass]> = vertex_class.iter().map(|v| v.as_slice()).collect();
    let free_class: Vec<PointClass> = free_points
        .iter()
        .map(|&p| classify(obstacles, p))
        .collect();
    let free_class_refs: Vec<&PointClass> = free_class.iter().collect();
    visible_set_prepared(
        obstacles,
        pivot,
        &pivot_class,
        pivot_vertex,
        free_points,
        &free_class_refs,
        &vertex_class_refs,
    )
}

/// Computes the visible set from `pivot` using pre-computed point
/// classifications (see [`classify`]): `vertex_class[o][v]` classifies
/// vertex `v` of `obstacles[o]`, `free_class[i]` classifies
/// `free_points[i]`.
#[allow(clippy::too_many_arguments)]
pub fn visible_set_prepared(
    obstacles: &[&Polygon],
    pivot: Point,
    pivot_class: &PointClass,
    pivot_vertex: Option<(usize, usize)>,
    free_points: &[Point],
    free_class: &[&PointClass],
    vertex_class: &[&[PointClass]],
) -> VisibleSet {
    debug_assert_eq!(free_points.len(), free_class.len());
    debug_assert_eq!(obstacles.len(), vertex_class.len());
    let mut result = VisibleSet {
        vertices: obstacles.iter().map(|p| vec![false; p.len()]).collect(),
        free: vec![false; free_points.len()],
    };

    // ---- Events.
    let mut events: Vec<Event> = Vec::new();
    for (oi, poly) in obstacles.iter().enumerate() {
        for (vi, &v) in poly.vertices().iter().enumerate() {
            if Some((oi, vi)) == pivot_vertex {
                continue; // the pivot itself
            }
            if v == pivot {
                // Coincident with the pivot: visible by definition.
                result.vertices[oi][vi] = true;
                continue;
            }
            events.push(Event {
                pos: v,
                kind: EventKind::Vertex {
                    obstacle: oi,
                    vertex: vi,
                },
            });
        }
    }
    for (fi, &p) in free_points.iter().enumerate() {
        if p == pivot {
            result.free[fi] = true;
            continue;
        }
        events.push(Event {
            pos: p,
            kind: EventKind::Free(fi),
        });
    }
    if events.is_empty() || pivot_class.inside {
        // A pivot strictly inside an obstacle sees nothing (only
        // coincident points, already marked).
        return result;
    }
    events.sort_by(|x, y| angular_cmp(pivot, x.pos, y.pos));

    let class_of = |kind: EventKind| -> &PointClass {
        match kind {
            EventKind::Vertex { obstacle, vertex } => &vertex_class[obstacle][vertex],
            EventKind::Free(fi) => free_class[fi],
        }
    };

    // ---- Edge table (skip edges incident to the pivot: they only touch
    // sight lines at the pivot and cannot block; the pivot's interior
    // cones handle blocking there).
    let mut edges: Vec<Edge> = Vec::new();
    let mut incident: Vec<Vec<Vec<usize>>> = obstacles
        .iter()
        .map(|p| vec![Vec::new(); p.len()])
        .collect();
    for (oi, poly) in obstacles.iter().enumerate() {
        let n = poly.len();
        for vi in 0..n {
            let s = poly.edge(vi);
            if s.a == pivot || s.b == pivot {
                continue;
            }
            let idx = edges.len();
            edges.push(Edge { a: s.a, b: s.b });
            incident[oi][vi].push(idx);
            incident[oi][(vi + 1) % n].push(idx);
        }
    }

    // ---- Initial status: edges properly crossing the ray from the pivot
    // in +x direction. The sidedness test against a horizontal line is
    // exact (pure comparisons).
    let mut status: Vec<usize> = Vec::new();
    for (ei, e) in edges.iter().enumerate() {
        let sa = e.a.y - pivot.y;
        let sb = e.b.y - pivot.y;
        if (sa > 0.0 && sb < 0.0) || (sa < 0.0 && sb > 0.0) {
            let t = e.a.x + (pivot.y - e.a.y) * (e.b.x - e.a.x) / (e.b.y - e.a.y) - pivot.x;
            if t > 0.0 {
                status.push(ei);
            }
        }
    }
    let init_dir = Point::new(pivot.x + 1.0, pivot.y);
    status.sort_by(|&x, &y| {
        obstacle_geom::total_cmp(
            ray_t(pivot, init_dir, &edges[x]),
            ray_t(pivot, init_dir, &edges[y]),
        )
    });

    // ---- Sweep.
    let mut gi = 0usize;
    while gi < events.len() {
        // Group = maximal run of events on the same ray (near to far).
        let mut gj = gi + 1;
        while gj < events.len() && same_ray(pivot, events[gi].pos, events[gj].pos) {
            gj += 1;
        }
        let group = &events[gi..gj];
        let ray_target = group[0].pos; // defines the current ray direction

        // Phase A: remove edges that end at this ray (their other endpoint
        // lies clockwise of the ray).
        for ev in group {
            if let EventKind::Vertex { obstacle, vertex } = ev.kind {
                for &ei in &incident[obstacle][vertex] {
                    let other = other_endpoint(&edges[ei], ev.pos);
                    if orient2d(pivot, ev.pos, other) == Orientation::Clockwise {
                        if let Some(p) = status.iter().position(|&s| s == ei) {
                            status.remove(p);
                        }
                    }
                }
            }
        }

        // Phase B: visibility, near to far along the ray.
        let mut chain_blocked = false;
        let mut prev_pos = pivot;
        let mut prev_visible = true;
        let mut prev_attachments: &[(usize, BoundaryAttachment)] = &[];
        for ev in group {
            let dw = pivot.dist(ev.pos);
            let class = class_of(ev.kind);
            let visible;
            if ev.pos == prev_pos {
                // Coincident with the previous event point.
                visible = prev_visible;
            } else {
                // Does the sight line continue into an interior at the
                // previous event point?
                if !chain_blocked && enters_interior(obstacles, prev_attachments, ev.pos) {
                    chain_blocked = true;
                }
                let mut blocked = chain_blocked || class.inside;
                // Closest properly-crossing edge on the ray.
                if !blocked {
                    if let Some(&front) = status.first() {
                        let t = ray_t(pivot, ray_target, &edges[front]);
                        if t < dw - 1e-9 * (1.0 + dw) {
                            blocked = true;
                        }
                    }
                }
                // Interior cones at the pivot and at the target.
                if !blocked && enters_interior(obstacles, &pivot_class.attachments, ev.pos) {
                    blocked = true;
                }
                if !blocked && enters_interior(obstacles, &class.attachments, pivot) {
                    blocked = true;
                }
                visible = !blocked;
                if blocked {
                    // Anything farther on this ray is blocked too: either
                    // the blocker sits strictly between pivot and `ev`, or
                    // the line enters an interior at/through `ev`.
                    chain_blocked = true;
                }
                prev_pos = ev.pos;
                prev_visible = visible;
                prev_attachments = &class.attachments;
            }
            match ev.kind {
                EventKind::Vertex { obstacle, vertex } => {
                    result.vertices[obstacle][vertex] = visible;
                }
                EventKind::Free(fi) => result.free[fi] = visible,
            }
        }

        // Phase C: insert edges that begin at this ray (other endpoint
        // counter-clockwise of the ray).
        for ev in group {
            if let EventKind::Vertex { obstacle, vertex } = ev.kind {
                for &ei in &incident[obstacle][vertex] {
                    let other = other_endpoint(&edges[ei], ev.pos);
                    if orient2d(pivot, ev.pos, other) == Orientation::CounterClockwise {
                        insert_into_status(&mut status, &edges, pivot, ray_target, ei, ev.pos);
                    }
                }
            }
        }

        gi = gj;
    }

    result
}

/// Whether `a` and `b` lie on the same ray from `pivot` (same direction).
fn same_ray(pivot: Point, a: Point, b: Point) -> bool {
    if orient2d(pivot, a, b) != Orientation::Collinear {
        return false;
    }
    // Same side: the dot product of the two directions is positive.
    (a - pivot).dot(b - pivot) > 0.0
}

fn other_endpoint(e: &Edge, p: Point) -> Point {
    if e.a == p {
        e.b
    } else {
        e.a
    }
}

/// Euclidean distance from `pivot` to the crossing of the ray
/// `pivot → through` with `e`; +inf when the edge is parallel to the ray.
fn ray_t(pivot: Point, through: Point, e: &Edge) -> f64 {
    let d = through - pivot;
    let s = e.b - e.a;
    let denom = d.cross(s);
    if denom == 0.0 {
        return f64::INFINITY;
    }
    let t = (e.a - pivot).cross(s) / denom; // parameter along d
    t * d.norm()
}

/// Result of a [`visible_set_windowed`] sweep over the *active* subset of
/// a scene.
#[derive(Clone, Debug)]
pub struct WindowedVisibility {
    /// `vertices[i][v]` — whether vertex `v` of obstacle `active[i]` is
    /// visible **w.r.t. the active subset**. Trustworthy for targets
    /// within `radius` of the pivot (see the function docs); farther
    /// flags may ignore blockers outside the window.
    pub vertices: Vec<Vec<bool>>,
    /// Angular arcs (CCW, in [`pseudo_angle`] units modulo 4) where the
    /// sweep could **not** certify a blocking edge within `radius`: a
    /// point farther than `radius` from the pivot may only be visible if
    /// its direction falls inside one of these arcs. Empty means the
    /// pivot's horizon is closed — nothing beyond `radius` is visible.
    /// `(a, a)` (or `(0.0, 4.0)`) denotes the full circle.
    pub open: Vec<(f64, f64)>,
}

/// Rotational sweep restricted to a *window*: only the obstacles listed
/// in `active` (indices into `polys`) contribute events and blocking
/// edges, and openness is judged against `radius`. With `range =
/// Some((a0, a1))` (a CCW pseudo-angle interval with `a0 <= a1`, i.e.
/// not wrapping past the +x axis) the sweep is further restricted to
/// that angular wedge: only events whose direction falls inside the
/// interval are processed, and the status is initialised on the ray at
/// `a0` instead of the +x axis.
///
/// Soundness contract (the lazy A\* successor oracle relies on it):
///
/// * if every obstacle of the scene whose MBR lies within Euclidean
///   distance `radius` of `pivot` — intersecting the wedge, when ranged —
///   is in `active`, then the visibility flag of every vertex within
///   `radius` (and inside the wedge) is **exact for the full scene**:
///   sight lines from the pivot are radial, so any blocker of a segment
///   of length ≤ `radius` lies inside the disk of that radius and on the
///   target's own ray, hence inside the wedge;
/// * any point farther than `radius` whose direction falls in no `open`
///   arc is **invisible for the full scene** — some active edge properly
///   crosses its ray nearer than `radius`, and active edges block
///   regardless of what the window misses.
///
/// Openness is evaluated at event-group boundaries only: between two
/// consecutive groups the status is constant and the front edge's
/// crossing distance is unimodal along the rotating ray, so its maximum
/// over the arc is attained at the endpoints. A ray through a vertex
/// (no *proper* crossing) yields an infinite front distance and
/// therefore marks its arcs open — conservative, never unsound.
///
/// Classifications (`vertex_class`) are indexed by the **full** scene, so
/// boundary attachments may reference non-active obstacles; their
/// interior-cone tests then use the full polygon list, which only makes
/// blocking more accurate.
#[allow(clippy::too_many_arguments)]
pub fn visible_set_windowed(
    polys: &[Polygon],
    vertex_class: &[Vec<PointClass>],
    active: &[usize],
    pivot: Point,
    pivot_class: &PointClass,
    pivot_vertex: Option<(usize, usize)>,
    radius: f64,
    range: Option<(f64, f64)>,
) -> WindowedVisibility {
    let mut result = WindowedVisibility {
        vertices: active
            .iter()
            .map(|&oi| vec![false; polys[oi].len()])
            .collect(),
        open: Vec::new(),
    };
    let enters = |attachments: &[(usize, BoundaryAttachment)], toward: Point| -> bool {
        attachments
            .iter()
            .any(|&(oi, at)| polys[oi].enters_interior_at_boundary(at, toward))
    };

    // ---- Events (active obstacle vertices, restricted to the range).
    let mut events: Vec<Event> = Vec::new();
    for (ai, &oi) in active.iter().enumerate() {
        for (vi, &v) in polys[oi].vertices().iter().enumerate() {
            if Some((oi, vi)) == pivot_vertex {
                continue; // the pivot itself
            }
            if v == pivot {
                result.vertices[ai][vi] = true;
                continue;
            }
            if let Some((a0, a1)) = range {
                let key = pseudo_angle(v.x - pivot.x, v.y - pivot.y);
                if key < a0 || key > a1 {
                    continue;
                }
            }
            events.push(Event {
                pos: v,
                kind: EventKind::Vertex {
                    obstacle: ai,
                    vertex: vi,
                },
            });
        }
    }
    if pivot_class.inside {
        // A pivot strictly inside an obstacle sees nothing and its rays
        // are all blocked at the surrounding boundary: horizon closed.
        return result;
    }
    if events.is_empty() {
        result.open.push(range.unwrap_or((0.0, 4.0)));
        return result;
    }
    // Near-sort by the cheap pseudo-angle key, then restore the *exact*
    // order (angular, near-to-far on a ray) with one insertion pass —
    // the float key can only misorder near-identical directions, so the
    // pass is O(n) amortized while the result matches `angular_cmp`
    // everywhere (within a non-wrapping range, absolute angular order is
    // the sweep order).
    events.sort_by_cached_key(|e| pseudo_angle(e.pos.x - pivot.x, e.pos.y - pivot.y).to_bits());
    for i in 1..events.len() {
        let mut j = i;
        while j > 0
            && angular_cmp(pivot, events[j - 1].pos, events[j].pos) == std::cmp::Ordering::Greater
        {
            events.swap(j - 1, j);
            j -= 1;
        }
    }

    // ---- Edge table from active obstacles (skip edges incident to the
    // pivot, as in the full sweep).
    let mut edges: Vec<Edge> = Vec::new();
    let mut incident: Vec<Vec<Vec<usize>>> = active
        .iter()
        .map(|&oi| vec![Vec::new(); polys[oi].len()])
        .collect();
    for (ai, &oi) in active.iter().enumerate() {
        let poly = &polys[oi];
        let n = poly.len();
        for vi in 0..n {
            let s = poly.edge(vi);
            if s.a == pivot || s.b == pivot {
                continue;
            }
            let idx = edges.len();
            edges.push(Edge { a: s.a, b: s.b });
            incident[ai][vi].push(idx);
            incident[ai][(vi + 1) % n].push(idx);
        }
    }

    // ---- Initial status: edges properly crossing the sweep's start ray
    // (the +x axis, or the ray at `a0` when ranged).
    let init_dir = match range {
        None => Point::new(pivot.x + 1.0, pivot.y),
        Some((a0, _)) => {
            let d = pseudo_dir(a0);
            Point::new(pivot.x + d.x, pivot.y + d.y)
        }
    };
    let mut status: Vec<usize> = Vec::new();
    match range {
        None => {
            // Exact horizontal-line sidedness (pure comparisons).
            for (ei, e) in edges.iter().enumerate() {
                let sa = e.a.y - pivot.y;
                let sb = e.b.y - pivot.y;
                if (sa > 0.0 && sb < 0.0) || (sa < 0.0 && sb > 0.0) {
                    let t = e.a.x + (pivot.y - e.a.y) * (e.b.x - e.a.x) / (e.b.y - e.a.y) - pivot.x;
                    if t > 0.0 {
                        status.push(ei);
                    }
                }
            }
        }
        Some(_) => {
            // Robust sidedness against an arbitrary start ray.
            for (ei, e) in edges.iter().enumerate() {
                let oa = orient2d(pivot, init_dir, e.a);
                let ob = orient2d(pivot, init_dir, e.b);
                let proper = matches!(
                    (oa, ob),
                    (Orientation::CounterClockwise, Orientation::Clockwise)
                        | (Orientation::Clockwise, Orientation::CounterClockwise)
                );
                if proper {
                    let t = ray_t(pivot, init_dir, e);
                    if t > 0.0 && t.is_finite() {
                        status.push(ei);
                    }
                }
            }
        }
    }
    status.sort_by(|&x, &y| {
        obstacle_geom::total_cmp(
            ray_t(pivot, init_dir, &edges[x]),
            ray_t(pivot, init_dir, &edges[y]),
        )
    });

    // Openness test: is the nearest properly-crossing edge along the ray
    // through `target` certifiably within the window radius?
    let edges_ref = &edges;
    let front_open = |status: &[usize], target: Point| -> bool {
        match status.first() {
            Some(&front) => {
                ray_t(pivot, target, &edges_ref[front]) >= radius - 1e-9 * (1.0 + radius)
            }
            None => true,
        }
    };

    // ---- Sweep.
    let mut first_boundary: Option<(f64, bool)> = None; // (pseudo-angle, arrive-open)
    let mut prev_boundary: Option<(f64, bool)> = None; // (pseudo-angle, leave-open)
    if let Some((a0, _)) = range {
        // The range start is a boundary of the first arc.
        let open = front_open(&status, init_dir);
        prev_boundary = Some((a0, open));
    }
    let mut gi = 0usize;
    while gi < events.len() {
        let mut gj = gi + 1;
        while gj < events.len() && same_ray(pivot, events[gi].pos, events[gj].pos) {
            gj += 1;
        }
        let group = &events[gi..gj];
        let ray_target = group[0].pos;
        let theta = pseudo_angle(ray_target.x - pivot.x, ray_target.y - pivot.y);

        // Openness of the arc ending at this ray.
        let arrive_open = front_open(&status, ray_target);
        match prev_boundary {
            Some((prev_theta, leave_open)) => {
                if leave_open || arrive_open {
                    result.open.push((prev_theta, theta));
                }
            }
            None => first_boundary = Some((theta, arrive_open)),
        }

        // Phase A: remove edges ending at this ray.
        for ev in group {
            if let EventKind::Vertex { obstacle, vertex } = ev.kind {
                for &ei in &incident[obstacle][vertex] {
                    let other = other_endpoint(&edges[ei], ev.pos);
                    if orient2d(pivot, ev.pos, other) == Orientation::Clockwise {
                        if let Some(p) = status.iter().position(|&s| s == ei) {
                            status.remove(p);
                        }
                    }
                }
            }
        }

        // Phase B: visibility, near to far along the ray.
        let mut chain_blocked = false;
        let mut prev_pos = pivot;
        let mut prev_visible = true;
        let mut prev_attachments: &[(usize, BoundaryAttachment)] = &[];
        for ev in group {
            let dw = pivot.dist(ev.pos);
            let EventKind::Vertex { obstacle, vertex } = ev.kind else {
                unreachable!("windowed sweeps have no free events");
            };
            let class = &vertex_class[active[obstacle]][vertex];
            let visible;
            if ev.pos == prev_pos {
                visible = prev_visible;
            } else {
                if !chain_blocked && enters(prev_attachments, ev.pos) {
                    chain_blocked = true;
                }
                let mut blocked = chain_blocked || class.inside;
                if !blocked {
                    if let Some(&front) = status.first() {
                        let t = ray_t(pivot, ray_target, &edges[front]);
                        if t < dw - 1e-9 * (1.0 + dw) {
                            blocked = true;
                        }
                    }
                }
                if !blocked && enters(&pivot_class.attachments, ev.pos) {
                    blocked = true;
                }
                if !blocked && enters(&class.attachments, pivot) {
                    blocked = true;
                }
                visible = !blocked;
                if blocked {
                    chain_blocked = true;
                }
                prev_pos = ev.pos;
                prev_visible = visible;
                prev_attachments = &class.attachments;
            }
            result.vertices[obstacle][vertex] = visible;
        }

        // Phase C: insert edges beginning at this ray.
        for ev in group {
            if let EventKind::Vertex { obstacle, vertex } = ev.kind {
                for &ei in &incident[obstacle][vertex] {
                    let other = other_endpoint(&edges[ei], ev.pos);
                    if orient2d(pivot, ev.pos, other) == Orientation::CounterClockwise {
                        insert_into_status(&mut status, &edges, pivot, ray_target, ei, ev.pos);
                    }
                }
            }
        }

        prev_boundary = Some((theta, front_open(&status, ray_target)));
        gi = gj;
    }

    match range {
        None => {
            // Wrap-around arc from the last group back to the first.
            if let (Some((last_theta, leave_open)), Some((first_theta, arrive_open))) =
                (prev_boundary, first_boundary)
            {
                if leave_open || arrive_open {
                    result.open.push((last_theta, first_theta));
                }
            }
        }
        Some((_, a1)) => {
            // The range end is the final arc boundary.
            let d = pseudo_dir(a1);
            let end_dir = Point::new(pivot.x + d.x, pivot.y + d.y);
            let end_open = front_open(&status, end_dir);
            if let Some((last_theta, leave_open)) = prev_boundary {
                if leave_open || end_open {
                    result.open.push((last_theta, a1));
                }
            }
        }
    }
    result
}

/// Direction (L1-unit vector) for a [`pseudo_angle`] key in `[0, 4]` —
/// the exact inverse of `pseudo_angle` up to scale.
fn pseudo_dir(key: f64) -> Point {
    if key < 2.0 {
        let p = 1.0 - key;
        Point::new(p, 1.0 - p.abs())
    } else {
        let p = key - 3.0;
        Point::new(p, -(1.0 - p.abs()))
    }
}

/// Inserts edge `ei` (incident to the event point `w` on the current ray)
/// into the status, keeping it sorted by crossing distance. Ties at the
/// same crossing point (sibling edges fanning out of `w`) are broken by
/// which edge the rotating ray will cross closer *after* leaving the
/// current angle: the edge making the larger CCW angle with the ray dives
/// toward the pivot faster.
fn insert_into_status(
    status: &mut Vec<usize>,
    edges: &[Edge],
    pivot: Point,
    through: Point,
    ei: usize,
    w: Point,
) {
    let dw = pivot.dist(w);
    let eps = 1e-9 * (1.0 + dw);
    let mut lo = status.partition_point(|&s| ray_t(pivot, through, &edges[s]) < dw - eps);
    // Walk over near-ties and order by the rotation rule.
    while lo < status.len() {
        let t = ray_t(pivot, through, &edges[status[lo]]);
        if t > dw + eps {
            break;
        }
        let sib = &edges[status[lo]];
        // Only meaningful when the tied edge also emanates from w.
        if sib.a == w || sib.b == w {
            let x_new = other_endpoint(&edges[ei], w);
            let x_sib = other_endpoint(sib, w);
            // New edge goes first iff its far end is clockwise of the
            // sibling's (larger CCW angle from the ray ⇒ crosses closer
            // after rotation).
            if orient2d(w, x_new, x_sib) == Orientation::Clockwise {
                break;
            }
        }
        lo += 1;
    }
    status.insert(lo, ei);
}
