//! The rotational plane sweep must produce exactly the same visibility
//! graph as the naive oracle, including on adversarial configurations
//! (collinear vertices, diagonals through corners, entities on walls).

use obstacle_geom::check;
use obstacle_geom::{Point, Polygon, Rect};
use obstacle_visibility::{EdgeBuilder, VisibilityGraph};

/// Builds both graphs over the same scene and asserts edge-set equality
/// (via each graph's semantic validator plus direct comparison).
fn assert_equivalent(obstacles: &[Rect], waypoints: &[Point]) {
    let obs = |_: ()| {
        obstacles
            .iter()
            .enumerate()
            .map(|(i, r)| (Polygon::from_rect(*r), i as u64))
    };
    let wps = || waypoints.iter().enumerate().map(|(i, &p)| (p, i as u64));
    let (naive, _) = VisibilityGraph::build(EdgeBuilder::Naive, obs(()), wps());
    let (sweep, _) = VisibilityGraph::build(EdgeBuilder::RotationalSweep, obs(()), wps());

    naive.validate(true).expect("naive graph is its own oracle");
    sweep.validate(true).unwrap_or_else(|e| {
        panic!(
            "sweep disagrees with oracle: {e}\nobstacles: {obstacles:?}\nwaypoints: {waypoints:?}"
        )
    });

    assert_eq!(naive.node_count(), sweep.node_count());
    assert_eq!(
        naive.edge_count(),
        sweep.edge_count(),
        "edge counts differ\nobstacles: {obstacles:?}\nwaypoints: {waypoints:?}"
    );
}

/// Disjoint rectangles on a jittered grid: deterministic, parameterised by
/// seed, never overlapping (cell-confined).
fn grid_rects(seed: u64, cells: usize, keep: usize) -> Vec<Rect> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut out = Vec::new();
    for cy in 0..cells {
        for cx in 0..cells {
            if out.len() >= keep {
                return out;
            }
            let cell = 1.0 / cells as f64;
            let x0 = cx as f64 * cell;
            let y0 = cy as f64 * cell;
            // Inset rectangle strictly inside the cell.
            let w = cell * (0.2 + 0.55 * next());
            let h = cell * (0.2 + 0.55 * next());
            let ox = cell * 0.1 * (1.0 + next());
            let oy = cell * 0.1 * (1.0 + next());
            out.push(Rect::from_coords(
                x0 + ox,
                y0 + oy,
                x0 + ox + w,
                y0 + oy + h,
            ));
        }
    }
    out
}

#[test]
fn empty_scene_connects_all_waypoints() {
    let wps = [
        Point::new(0.1, 0.1),
        Point::new(0.9, 0.2),
        Point::new(0.5, 0.8),
    ];
    assert_equivalent(&[], &wps);
}

#[test]
fn single_square_basic() {
    assert_equivalent(
        &[Rect::from_coords(0.4, 0.4, 0.6, 0.6)],
        &[
            Point::new(0.1, 0.5),
            Point::new(0.9, 0.5),
            Point::new(0.5, 0.1),
        ],
    );
}

#[test]
fn two_squares_aligned_corners() {
    // Diagonally aligned corners: the segment between the inner corners
    // grazes both squares — visible (boundary contact only).
    assert_equivalent(
        &[
            Rect::from_coords(0.1, 0.1, 0.3, 0.3),
            Rect::from_coords(0.3, 0.3, 0.5, 0.5),
        ],
        &[Point::new(0.05, 0.05), Point::new(0.6, 0.6)],
    );
}

#[test]
fn collinear_corners_on_one_ray() {
    // Three rectangles whose corners are exactly collinear with the
    // waypoint at the origin: the classic same-ray event chain.
    assert_equivalent(
        &[
            Rect::from_coords(0.1, 0.1, 0.2, 0.2),
            Rect::from_coords(0.3, 0.3, 0.4, 0.4),
            Rect::from_coords(0.5, 0.5, 0.6, 0.6),
        ],
        &[
            Point::new(0.0, 0.0),
            Point::new(0.75, 0.75),
            Point::new(0.25, 0.25),
        ],
    );
}

#[test]
fn waypoint_horizontally_aligned_with_corners() {
    // Events exactly on the initial (+x) ray of the sweep.
    assert_equivalent(
        &[Rect::from_coords(0.4, 0.2, 0.6, 0.5)],
        &[
            Point::new(0.1, 0.5), // same y as the top edge
            Point::new(0.9, 0.5),
            Point::new(0.1, 0.2), // same y as the bottom edge
            Point::new(0.9, 0.2),
        ],
    );
}

#[test]
fn aligned_rectangle_walls() {
    // Rectangles sharing wall lines (same x extents): edges collinear
    // with sight lines along the walls.
    assert_equivalent(
        &[
            Rect::from_coords(0.2, 0.1, 0.4, 0.3),
            Rect::from_coords(0.2, 0.5, 0.4, 0.7),
            Rect::from_coords(0.2, 0.8, 0.4, 0.9),
        ],
        &[
            Point::new(0.2, 0.0), // on the shared wall line x = 0.2
            Point::new(0.2, 0.95),
            Point::new(0.3, 0.4),
        ],
    );
}

#[test]
fn dense_random_scenes() {
    for seed in 0..20u64 {
        let rects = grid_rects(seed, 4, 12);
        let wps = [
            Point::new(0.01, 0.01),
            Point::new(0.99, 0.99),
            Point::new(0.5, 0.02),
            Point::new(0.02, 0.55),
        ];
        assert_equivalent(&rects, &wps);
    }
}

#[test]
fn waypoints_on_obstacle_boundaries() {
    // Entities placed exactly on obstacle walls (the paper allows
    // entities on boundaries).
    let r = Rect::from_coords(0.3, 0.3, 0.7, 0.7);
    assert_equivalent(
        &[r, Rect::from_coords(0.1, 0.1, 0.2, 0.2)],
        &[
            Point::new(0.5, 0.3), // mid bottom wall
            Point::new(0.7, 0.5), // mid right wall
            Point::new(0.3, 0.3), // exactly at a corner
            Point::new(0.9, 0.9),
        ],
    );
}

#[test]
fn sweep_equals_naive_on_random_scenes() {
    check::cases(48, |g| {
        let seed = g.u64(0, 10_000);
        let cells = g.usize(2, 5);
        let keep = g.usize(1, 14);
        let wps = g.vec(1, 6, |g| Point::new(g.f64(0.0, 1.0), g.f64(0.0, 1.0)));
        let rects = grid_rects(seed, cells, keep);
        // Waypoints that fall strictly inside an obstacle are allowed but
        // make the check trivial (no edges either way).
        assert_equivalent(&rects, &wps);
    });
}

#[test]
fn dynamic_ops_match_bulk_build() {
    check::cases(48, |g| {
        let seed = g.u64(0, 10_000);
        let keep = g.usize(1, 8);
        let wps = g.vec(1, 5, |g| Point::new(g.f64(0.0, 1.0), g.f64(0.0, 1.0)));
        let rects = grid_rects(seed, 3, keep);

        // Incremental: add obstacles one by one, then waypoints one by one.
        let mut inc = VisibilityGraph::new(EdgeBuilder::RotationalSweep);
        for (i, r) in rects.iter().enumerate() {
            inc.add_obstacle(Polygon::from_rect(*r), i as u64);
        }
        let mut ids = Vec::new();
        for (i, &p) in wps.iter().enumerate() {
            ids.push(inc.add_waypoint(p, i as u64));
        }
        assert!(inc.validate(true).is_ok(), "{:?}", inc.validate(true));

        // Bulk build must agree on edge count.
        let (bulk, _) = VisibilityGraph::build(
            EdgeBuilder::RotationalSweep,
            rects
                .iter()
                .enumerate()
                .map(|(i, r)| (Polygon::from_rect(*r), i as u64)),
            wps.iter().enumerate().map(|(i, &p)| (p, i as u64)),
        );
        assert_eq!(inc.edge_count(), bulk.edge_count());

        // Deleting all waypoints leaves a pure obstacle graph that still
        // validates semantically.
        for id in ids {
            inc.remove_waypoint(id);
        }
        assert!(inc.validate(true).is_ok());
    });
}
