//! The tangent visibility graph \[PV95\] must preserve all
//! waypoint-to-waypoint shortest distances while removing edges.

use obstacle_geom::check;
use obstacle_geom::{Point, Polygon, Rect};
use obstacle_visibility::{dijkstra_distance, EdgeBuilder, VisibilityGraph};

fn grid_rects(seed: u64, cells: usize, keep: usize) -> Vec<Rect> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut out = Vec::new();
    for cy in 0..cells {
        for cx in 0..cells {
            if out.len() >= keep {
                return out;
            }
            let cell = 1.0 / cells as f64;
            let (x0, y0) = (cx as f64 * cell, cy as f64 * cell);
            let w = cell * (0.2 + 0.5 * next());
            let h = cell * (0.2 + 0.5 * next());
            let ox = cell * 0.1 * (1.0 + next());
            let oy = cell * 0.1 * (1.0 + next());
            out.push(Rect::from_coords(
                x0 + ox,
                y0 + oy,
                x0 + ox + w,
                y0 + oy + h,
            ));
        }
    }
    out
}

fn check_preserves_waypoint_distances(obstacles: Vec<Polygon>, waypoints: Vec<Point>) {
    let (mut g, ids) = VisibilityGraph::build(
        EdgeBuilder::RotationalSweep,
        obstacles
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64)),
        waypoints.iter().enumerate().map(|(i, &p)| (p, i as u64)),
    );
    let before_edges = g.edge_count();
    let mut before = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            before.push(dijkstra_distance(&g, ids[i], ids[j]));
        }
    }
    let removed = g.prune_non_tangent();
    assert_eq!(g.edge_count() + removed, before_edges);
    let mut idx = 0;
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let after = dijkstra_distance(&g, ids[i], ids[j]);
            match (before[idx], after) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "pair {i},{j}: {a} vs {b}")
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
            idx += 1;
        }
    }
}

#[test]
fn single_square_prunes_nothing_essential() {
    let square = Polygon::from_rect(Rect::from_coords(0.4, 0.4, 0.6, 0.6));
    check_preserves_waypoint_distances(
        vec![square],
        vec![
            Point::new(0.1, 0.5),
            Point::new(0.9, 0.5),
            Point::new(0.5, 0.1),
            Point::new(0.5, 0.9),
        ],
    );
}

#[test]
fn pruning_removes_edges_on_dense_scenes() {
    let rects = grid_rects(3, 4, 12);
    let (mut g, _) = VisibilityGraph::build(
        EdgeBuilder::RotationalSweep,
        rects
            .iter()
            .enumerate()
            .map(|(i, r)| (Polygon::from_rect(*r), i as u64)),
        [(Point::new(0.02, 0.02), 0u64), (Point::new(0.98, 0.98), 1)],
    );
    let before = g.edge_count();
    let removed = g.prune_non_tangent();
    assert!(removed > 0, "dense scenes must contain non-tangent edges");
    assert!(g.edge_count() < before);
    // The structural invariants still hold (semantics intentionally not:
    // pruned edges were visible).
    assert!(g.validate(false).is_ok());
}

#[test]
fn concave_obstacles_are_supported() {
    // L-shaped obstacle: turning happens at its convex corners; the
    // reflex corner cannot carry taut paths.
    let l = Polygon::new(vec![
        Point::new(0.3, 0.3),
        Point::new(0.7, 0.3),
        Point::new(0.7, 0.45),
        Point::new(0.45, 0.45),
        Point::new(0.45, 0.7),
        Point::new(0.3, 0.7),
    ])
    .unwrap();
    check_preserves_waypoint_distances(
        vec![l],
        vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.9),
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.5, 0.5), // in the notch
        ],
    );
}

#[test]
fn pruning_preserves_distances_on_random_scenes() {
    check::cases(32, |g| {
        let seed = g.u64(0, 5_000);
        let keep = g.usize(1, 10);
        let waypoints = g.vec(2, 6, |g| Point::new(g.f64(0.0, 1.0), g.f64(0.0, 1.0)));
        let rects = grid_rects(seed, 3, keep);
        check_preserves_waypoint_distances(
            rects.into_iter().map(Polygon::from_rect).collect(),
            waypoints,
        );
    });
}
