//! Self-check: the live workspace this linter ships in must be
//! lint-clean. This is the regression gate — any future reintroduction
//! of a raw accessor, panicking float sort, hot-path unwrap, or
//! undisciplined lock/clock fails this test (and `ci.sh analyze`).

use std::path::Path;

#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = obstacle_lint::run_workspace(&root).expect("workspace walk failed");
    assert!(
        report.files_scanned > 30,
        "walker found only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
