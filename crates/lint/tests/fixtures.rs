//! Golden-fixture suite: one tripping and one passing fixture per pass.
//!
//! Fixtures live under `crates/lint/fixtures/` (excluded from the
//! workspace walk) and are linted here under a *fake* repo-relative
//! path chosen so the pass under test is in scope and nothing is
//! allow-listed away.

use obstacle_lint::{
    lint_source, LOCK_DISCIPLINE, NAN_ORDERING, NO_UNWRAP_HOT_PATH, TOMBSTONE_SAFETY,
};

/// Lint `src` as if it lived at `fake_path`, returning the set of pass
/// names that fired.
fn passes_fired(fake_path: &str, src: &str) -> Vec<&'static str> {
    let violations = lint_source(fake_path, src);
    let mut names: Vec<&'static str> = violations.iter().map(|v| v.pass).collect();
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn tombstone_safety_fixture_trips() {
    let fired = passes_fired(
        "crates/core/src/range.rs",
        include_str!("../fixtures/tombstone_safety_trip.rs"),
    );
    assert_eq!(fired, vec![TOMBSTONE_SAFETY]);
}

#[test]
fn tombstone_safety_fixture_passes() {
    let fired = passes_fired(
        "crates/core/src/range.rs",
        include_str!("../fixtures/tombstone_safety_clean.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}

#[test]
fn nan_ordering_fixture_trips() {
    let fired = passes_fired(
        "crates/rtree/src/float.rs",
        include_str!("../fixtures/nan_ordering_trip.rs"),
    );
    assert_eq!(fired, vec![NAN_ORDERING]);
}

#[test]
fn nan_ordering_fixture_passes() {
    let fired = passes_fired(
        "crates/rtree/src/float.rs",
        include_str!("../fixtures/nan_ordering_clean.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}

#[test]
fn no_unwrap_hot_path_fixture_trips() {
    let src = include_str!("../fixtures/no_unwrap_hot_path_trip.rs");
    let fired = passes_fired("crates/core/src/distance.rs", src);
    assert_eq!(fired, vec![NO_UNWRAP_HOT_PATH]);
    // Both the unwrap and the expect must be reported individually.
    let violations = lint_source("crates/core/src/distance.rs", src);
    assert_eq!(violations.len(), 2);
}

#[test]
fn no_unwrap_hot_path_fixture_passes() {
    let fired = passes_fired(
        "crates/core/src/distance.rs",
        include_str!("../fixtures/no_unwrap_hot_path_clean.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}

#[test]
fn no_unwrap_pass_is_scoped_to_hot_path_modules() {
    // The same tripping source is fine outside the hot-path module list.
    let fired = passes_fired(
        "crates/datagen/src/city.rs",
        include_str!("../fixtures/no_unwrap_hot_path_trip.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}

#[test]
fn lock_discipline_fixture_trips() {
    let src = include_str!("../fixtures/lock_discipline_trip.rs");
    let fired = passes_fired("crates/core/src/engine.rs", src);
    assert_eq!(fired, vec![LOCK_DISCIPLINE]);
    // Raw mutex, rwlock, condvar, spawn and clock: five violations.
    let violations = lint_source("crates/core/src/engine.rs", src);
    assert_eq!(violations.len(), 5);
}

#[test]
fn lock_discipline_fixture_passes() {
    let fired = passes_fired(
        "crates/core/src/engine.rs",
        include_str!("../fixtures/lock_discipline_clean.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}

#[test]
fn lock_discipline_is_waived_inside_the_sync_shim() {
    // The shim itself wraps std::sync::Mutex — allow-listed by path.
    let fired = passes_fired(
        "crates/rtree/src/sync.rs",
        include_str!("../fixtures/lock_discipline_trip.rs"),
    );
    assert!(fired.is_empty(), "unexpected violations: {fired:?}");
}
