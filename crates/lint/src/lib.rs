//! `obstacle_lint` — the workspace's in-tree invariant linter.
//!
//! Project invariants that used to live only in reviewers' heads are
//! enforced here as named, allow-listable passes over a hand-rolled
//! lexer (no registry dependencies, per the offline policy):
//!
//! | pass | invariant |
//! |------|-----------|
//! | `tombstone-safety` | raw `points()`/`polygons()` enumeration is forbidden outside the index module — the PR 7 stale-id bug class |
//! | `nan-ordering` | float comparison goes through `obstacle_geom::total_cmp`, never `.partial_cmp(..).unwrap()` |
//! | `no-unwrap-hot-path` | `unwrap()`/`expect()` are forbidden in operator hot paths outside tests |
//! | `lock-discipline` | raw `std::sync::Mutex`/`thread::spawn`/`Instant::now` only in the `sync` shim and the bench crate |
//!
//! The static passes pair with the *dynamic* lock-order checker inside
//! `obstacle_rtree::sync` (debug builds): held-lock stacks feeding an
//! acquisition-order graph that panics on a lock-order cycle.
//!
//! Run it via the `obstacle_lint` binary (wired into `./ci.sh analyze`)
//! or the library API: [`lint_source`] for one buffer, [`run_workspace`]
//! for the whole tree. The golden-fixture suite under `fixtures/` pins
//! one tripping and one passing input per pass, and a self-check test
//! asserts the live workspace is lint-clean.

#![warn(missing_docs)]

pub mod lexer;
pub mod passes;
mod walk;

pub use passes::{
    Violation, LOCK_DISCIPLINE, NAN_ORDERING, NO_UNWRAP_HOT_PATH, PASS_NAMES, TOMBSTONE_SAFETY,
};

use std::path::Path;

/// Lints one source buffer as if it lived at the workspace-relative path
/// `file` (the allow-lists key on that path).
pub fn lint_source(file: &str, src: &str) -> Vec<Violation> {
    let lexed = lexer::lex(src);
    let mask = lexer::test_region_mask(&lexed.tokens);
    passes::run_passes(file, &lexed.tokens, &lexed.comments, &mask)
}

/// A whole-workspace lint run.
#[derive(Debug)]
pub struct Report {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Every violation, sorted by `(file, line, pass)`.
    pub violations: Vec<Violation>,
}

/// Lints every `.rs` file under `root` (skipping build artifacts and the
/// lint fixtures, which violate the rules on purpose).
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let files = walk::rust_files(root)?;
    let mut violations = Vec::new();
    for (abs, rel) in &files {
        let src = std::fs::read_to_string(abs)?;
        violations.extend(lint_source(rel, &src));
    }
    violations.sort();
    Ok(Report {
        files_scanned: files.len(),
        violations,
    })
}
