//! The invariant passes and their allow-list configuration.
//!
//! Each pass is *named* and *allow-listable* at two levels:
//!
//! * a built-in per-pass file allow-list (the modules whose job is to be
//!   the one sanctioned home of the pattern — e.g. the `sync` shim for
//!   the lock primitives, `geom/order.rs` for float comparison);
//! * an inline annotation `// lint:allow(<pass>): <reason>` on the
//!   violating line or the line directly above it, for the rare
//!   invariant-documented exception.
//!
//! Paths are workspace-relative with `/` separators; an allow-list entry
//! ending in `/` matches the whole subtree.

use crate::lexer::{Comment, TokKind, Token};

/// A single rule violation, keyed for stable `file:line: [pass]` output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// The pass that fired (one of [`PASS_NAMES`]).
    pub pass: &'static str,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Pass (1): raw tombstone-blind accessors. PR 7's stale-id bug was
/// `semi_join` enumerating `polygons()` instead of `live_polygons()`.
pub const TOMBSTONE_SAFETY: &str = "tombstone-safety";
/// Pass (2): floats must be compared through `obstacle_geom::total_cmp`.
pub const NAN_ORDERING: &str = "nan-ordering";
/// Pass (3): no `unwrap()`/`expect()` in hot-path operator modules.
pub const NO_UNWRAP_HOT_PATH: &str = "no-unwrap-hot-path";
/// Pass (4): lock/clock/thread primitives only through the `sync` shim.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";

/// Every pass name, in reporting order.
pub const PASS_NAMES: [&str; 4] = [
    TOMBSTONE_SAFETY,
    NAN_ORDERING,
    NO_UNWRAP_HOT_PATH,
    LOCK_DISCIPLINE,
];

/// Files allowed to call raw `points()` / `polygons()` accessors: the
/// index module that owns the tombstone representation itself.
const TOMBSTONE_ALLOW: &[&str] = &["crates/core/src/engine.rs"];

/// The one sanctioned home of float comparison.
const NAN_ALLOW: &[&str] = &["crates/geom/src/order.rs"];

/// Hot-path modules where `unwrap()`/`expect()` is forbidden outside
/// tests: the six paper operators, the distance/path engines, the brute
/// oracle, and the lazy A\* scene.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/brute.rs",
    "crates/core/src/closest_pair.rs",
    "crates/core/src/distance.rs",
    "crates/core/src/join.rs",
    "crates/core/src/nn.rs",
    "crates/core/src/path.rs",
    "crates/core/src/range.rs",
    "crates/core/src/semi_join.rs",
    "crates/visibility/src/astar.rs",
];

/// Files/subtrees allowed to touch raw lock, thread and clock
/// primitives: the shim that wraps them, and the bench crate (whose
/// whole job is timing and thread orchestration).
const LOCK_ALLOW: &[&str] = &["crates/rtree/src/sync.rs", "crates/bench/"];

fn path_matches(file: &str, entry: &str) -> bool {
    if let Some(prefix) = entry.strip_suffix('/') {
        file.starts_with(prefix) && file[prefix.len()..].starts_with('/')
    } else {
        file == entry
    }
}

fn allow_listed(file: &str, list: &[&str]) -> bool {
    list.iter().any(|e| path_matches(file, e))
}

/// Lines carrying a `lint:allow(pass-a, pass-b): reason` annotation.
fn inline_allows(comments: &[Comment]) -> Vec<(usize, Vec<String>)> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let passes: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !passes.is_empty() {
            out.push((c.line, passes));
        }
    }
    out
}

fn is_inline_allowed(allows: &[(usize, Vec<String>)], pass: &str, line: usize) -> bool {
    allows
        .iter()
        .any(|(l, ps)| (*l == line || *l + 1 == line) && ps.iter().any(|p| p == pass))
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Matches `seg0 :: seg1 :: … :: segN` starting at token `i`.
fn path_seq(tokens: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut at = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !(punct(tokens, at, ':') && punct(tokens, at + 1, ':')) {
                return false;
            }
            at += 2;
        }
        if ident(tokens, at) != Some(*seg) {
            return false;
        }
        at += 1;
    }
    true
}

/// Runs every pass over one lexed file. `file` is the workspace-relative
/// path (`/`-separated) the allow-lists are keyed on.
pub fn run_passes(
    file: &str,
    tokens: &[Token],
    comments: &[Comment],
    test_mask: &[bool],
) -> Vec<Violation> {
    let allows = inline_allows(comments);
    // Integration tests, benches and examples are test/driver code for
    // the purposes of the tests-exempt pass (3).
    let file_is_test = file
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches");
    let mut out = Vec::new();

    let mut push = |pass: &'static str, line: usize, message: String| {
        if !is_inline_allowed(&allows, pass, line) {
            out.push(Violation {
                file: file.to_string(),
                line,
                pass,
                message,
            });
        }
    };

    let tombstone = !allow_listed(file, TOMBSTONE_ALLOW);
    let nan = !allow_listed(file, NAN_ALLOW);
    let hot_path = HOT_PATH_FILES.iter().any(|p| path_matches(file, p));
    let lock = !allow_listed(file, LOCK_ALLOW);

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        let in_test = test_mask.get(i).copied().unwrap_or(false) || file_is_test;

        // (1) tombstone-safety: `.points()` / `.polygons()` method calls.
        if tombstone && punct(tokens, i, '.') {
            if let Some(name) = ident(tokens, i + 1) {
                if matches!(name, "points" | "polygons" | "raw_points" | "raw_polygons")
                    && punct(tokens, i + 2, '(')
                    && punct(tokens, i + 3, ')')
                {
                    push(
                        TOMBSTONE_SAFETY,
                        line,
                        format!(
                            "raw `.{name}()` ignores tombstones (the PR 7 stale-id bug \
                             class); enumerate through `live_points()` / `live_polygons()`"
                        ),
                    );
                }
            }
        }

        // (2) nan-ordering: any `.partial_cmp` call. `fn partial_cmp`
        // trait-impl definitions have no preceding `.` and do not match.
        if nan && punct(tokens, i, '.') && ident(tokens, i + 1) == Some("partial_cmp") {
            push(
                NAN_ORDERING,
                line,
                "float comparison via `.partial_cmp(..)` panics (or lies) on NaN; use \
                 `obstacle_geom::total_cmp` / `sort_by_f64_key`"
                    .to_string(),
            );
        }

        // (3) no-unwrap-hot-path: `.unwrap()` / `.expect(` outside tests.
        if hot_path && !in_test && punct(tokens, i, '.') {
            if let Some(name) = ident(tokens, i + 1) {
                if matches!(name, "unwrap" | "expect") && punct(tokens, i + 2, '(') {
                    push(
                        NO_UNWRAP_HOT_PATH,
                        line,
                        format!(
                            "`.{name}(..)` in a hot-path operator module can abort a whole \
                             batch; restructure to `Option` flow, or document the invariant \
                             with `// lint:allow({NO_UNWRAP_HOT_PATH}): <why>`"
                        ),
                    );
                }
            }
        }

        // (4) lock-discipline: raw primitives outside the shim.
        if lock {
            if path_seq(tokens, i, &["std", "sync", "Mutex"]) {
                push(
                    LOCK_DISCIPLINE,
                    line,
                    "raw `std::sync::Mutex` bypasses the lock-order checker; use \
                     `obstacle_rtree::sync::Mutex`"
                        .to_string(),
                );
            }
            if path_seq(tokens, i, &["std", "sync", "RwLock"]) {
                push(
                    LOCK_DISCIPLINE,
                    line,
                    "raw `std::sync::RwLock` bypasses the shim's poison recovery; use \
                     `obstacle_rtree::sync::RwLock`"
                        .to_string(),
                );
            }
            if path_seq(tokens, i, &["std", "sync", "Condvar"]) {
                push(
                    LOCK_DISCIPLINE,
                    line,
                    "raw `std::sync::Condvar` cannot park on the shim mutex (the debug \
                     held-stack would go stale); use `obstacle_rtree::sync::Condvar`"
                        .to_string(),
                );
            }
            if path_seq(tokens, i, &["thread", "spawn"]) && !(i > 0 && punct(tokens, i - 1, '.')) {
                push(
                    LOCK_DISCIPLINE,
                    line,
                    "`thread::spawn` creates untracked free-running threads; use scoped \
                     threads (`std::thread::scope`) so joins are structural"
                        .to_string(),
                );
            }
            // `std::time::Instant::now()` matches both arms; the bare
            // `Instant::now` arm stands down when a `time::` qualifier
            // precedes it so the site is reported exactly once.
            let qualified = i >= 3
                && punct(tokens, i - 1, ':')
                && punct(tokens, i - 2, ':')
                && ident(tokens, i - 3) == Some("time");
            if (path_seq(tokens, i, &["Instant", "now"]) && !qualified)
                || path_seq(tokens, i, &["std", "time", "Instant"])
            {
                push(
                    LOCK_DISCIPLINE,
                    line,
                    "raw `Instant` timing belongs to the bench crate; operators time \
                     themselves through `obstacle_rtree::sync::Stopwatch`"
                        .to_string(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_region_mask};

    fn lint(file: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        run_passes(file, &lexed.tokens, &lexed.comments, &mask)
    }

    #[test]
    fn path_matching_understands_subtree_entries() {
        assert!(path_matches("crates/bench/src/harness.rs", "crates/bench/"));
        assert!(!path_matches("crates/benchmark/src/x.rs", "crates/bench/"));
        assert!(path_matches(
            "crates/geom/src/order.rs",
            "crates/geom/src/order.rs"
        ));
    }

    #[test]
    fn inline_allow_suppresses_only_its_pass_and_lines() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap-hot-path): invariant documented here
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let v = lint("crates/core/src/range.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn std_mutex_and_instant_flag_outside_the_shim_only() {
        let src = "use std::sync::Mutex;\nfn t() { let _ = std::time::Instant::now(); }\n";
        assert!(lint("crates/rtree/src/sync.rs", src).is_empty());
        assert!(lint("crates/bench/src/harness.rs", src).is_empty());
        let v = lint("crates/core/src/batch.rs", src);
        assert!(v.iter().any(|x| x.pass == LOCK_DISCIPLINE && x.line == 1));
        assert!(v.iter().any(|x| x.pass == LOCK_DISCIPLINE && x.line == 2));
    }

    #[test]
    fn scoped_spawn_is_not_thread_spawn() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(lint("crates/core/src/batch.rs", src).is_empty());
        let v = lint(
            "crates/core/src/batch.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn partial_cmp_definition_is_not_a_call() {
        let src = "\
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
";
        assert!(lint("crates/visibility/src/astar.rs", src).is_empty());
    }
}
