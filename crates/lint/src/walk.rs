//! Workspace file walker: every `.rs` file, no build artifacts, no
//! lint fixtures (they violate the rules on purpose).

use std::path::{Path, PathBuf};

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git"];

/// Workspace-relative path prefixes excluded from linting.
const SKIP_PREFIXES: &[&str] = &["crates/lint/fixtures"];

/// Collects every lintable `.rs` file under `root`, returned as
/// `(absolute path, workspace-relative '/'-separated path)` sorted by
/// relative path for deterministic reports.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                let rel = rel_path(root, &path);
                if SKIP_PREFIXES
                    .iter()
                    .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
                {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                out.push((path, rel));
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
