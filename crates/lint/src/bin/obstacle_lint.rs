//! CLI for the in-tree invariant linter.
//!
//! ```text
//! obstacle_lint [--root <dir>] [--list]
//! ```
//!
//! Exit status: 0 when the tree is clean, 1 when any pass fires, 2 on
//! usage or IO errors. Violations print as `file:line: [pass] message`,
//! one per line, sorted — stable enough to diff in CI.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("obstacle_lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for p in obstacle_lint::PASS_NAMES {
                    println!("{p}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("obstacle_lint: unknown argument '{other}' (usage: obstacle_lint [--root <dir>] [--list])");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace the binary was built from — correct
    // both for `cargo run -p obstacle-lint` and for `./ci.sh analyze`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match obstacle_lint::run_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "obstacle_lint: {} files clean across {} passes",
                    report.files_scanned,
                    obstacle_lint::PASS_NAMES.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "obstacle_lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("obstacle_lint: IO error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
