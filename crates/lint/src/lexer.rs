//! A hand-rolled Rust lexer — just enough fidelity for invariant passes.
//!
//! The passes only need identifier/punctuation token streams with source
//! lines, plus the comment list (for inline `lint:allow` annotations).
//! Everything that could *hide* a token — string literals (including raw
//! and byte strings), char literals, lifetimes, comments — is consumed
//! and discarded so that `".partial_cmp("` inside a string or doc
//! comment never trips a pass, and so that brace matching over the token
//! stream (used to find `#[cfg(test)]` regions) is never thrown off by a
//! `'{'` in a literal.

/// What a token is: an identifier/keyword, or a single punctuation char.
/// Literals and comments are consumed by the lexer and never tokenized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, …).
    Ident(String),
    /// One punctuation character (`.`, `:`, `(`, `{`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Identifier or punctuation.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: usize,
}

/// A comment (line or block) with the 1-based line it starts on; the
/// text includes the `//` / `/*` markers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Raw comment text.
    pub text: String,
}

/// Lexer output: the token stream and the comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier/punctuation tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unterminated literals simply consume
/// to end of input (the compiler, not the linter, owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let (start, start_line) = (i, line);
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Raw strings (r"…", r#"…"#) and byte-string prefixes (b"…",
        // br"…", b'…'). Only commit when the prefix is actually followed
        // by a quote — otherwise `rects`/`bound` lex as plain idents.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            let raw = j < n && b[j] == 'r';
            if raw {
                j += 1;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    j += 1;
                    while j < n {
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                        } else if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            j += 1 + k;
                            if k == hashes {
                                break;
                            }
                        } else {
                            j += 1;
                        }
                    }
                    i = j;
                    continue;
                }
            } else if c == 'b' && j < n && (b[j] == '"' || b[j] == '\'') {
                // Skip the `b`; the quote is handled on the next pass.
                i = j;
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        // String literal.
        if c == '"' {
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Lifetime/label vs char literal: `'a` is a lifetime unless a
        // closing quote follows immediately (`'a'`).
        if c == '\'' {
            let lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if lifetime {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            // Malformed literal; resync at the newline.
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            continue;
        }
        // Number literal (digits, hex, suffixes, simple floats). Junk
        // like exponent signs splits into extra punct tokens — harmless.
        if c.is_ascii_digit() {
            i += 1;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// Marks every token inside a `#[cfg(test)]`-gated item (typically a
/// `mod tests { … }`) so passes can exempt test code. Brace matching
/// runs over the token stream, which the lexer keeps literal-free.
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_cfg_test_attr(tokens, i) {
            i += 1;
            continue;
        }
        // Skip this attribute (7 tokens) and any further `#[…]` attrs.
        let mut j = i + 7;
        while matches!(tokens.get(j).map(|t| &t.kind), Some(TokKind::Punct('#'))) {
            j += 1; // at '['
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Item header up to its body brace; a `;` first means a bodyless
        // item (`#[cfg(test)] use …;`) — mask through the semicolon.
        let mut k = j;
        let mut body = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('{') => {
                    body = Some(k);
                    break;
                }
                TokKind::Punct(';') => break,
                _ => k += 1,
            }
        }
        let end = match body {
            None => k,
            Some(open) => {
                let mut depth = 0usize;
                let mut m = open;
                while m < tokens.len() {
                    match tokens[m].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                m
            }
        };
        let end = end.min(tokens.len().saturating_sub(1));
        mask[i..=end].fill(true);
        i = end + 1;
    }
    mask
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let want: [&TokKind; 7] = [
        &TokKind::Punct('#'),
        &TokKind::Punct('['),
        &TokKind::Ident(String::new()), // cfg — checked below
        &TokKind::Punct('('),
        &TokKind::Ident(String::new()), // test — checked below
        &TokKind::Punct(')'),
        &TokKind::Punct(']'),
    ];
    if i + want.len() > tokens.len() {
        return false;
    }
    for (off, w) in want.iter().enumerate() {
        let got = &tokens[i + off].kind;
        match (off, w, got) {
            (2, _, TokKind::Ident(s)) if s == "cfg" => {}
            (4, _, TokKind::Ident(s)) if s == "test" => {}
            (2 | 4, _, _) => return false,
            (_, TokKind::Punct(a), TokKind::Punct(b)) if a == b => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_hide_their_contents() {
        let src = r###"
            let a = "partial_cmp inside a string";
            // partial_cmp inside a line comment
            /* partial_cmp inside a /* nested */ block */
            let b = 'x';
            let c = r#"raw "quoted" partial_cmp"#;
            let d = b"bytes partial_cmp";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "partial_cmp"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "real_ident"));
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'b';");
        assert!(ids.iter().any(|s| s == "str"));
        // 'b' is a char literal, not a lifetime then a stray quote.
        assert!(!ids.iter().any(|s| s == "b"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"line\n\nspanning\";\nvictim();";
        let lexed = lex(src);
        let v = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("victim".into()))
            .unwrap();
        assert_eq!(v.line, 4);
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = r#"
            fn live() { hot(); }
            #[cfg(test)]
            mod tests {
                fn inner() { cold(); }
            }
            fn live2() { hot2(); }
        "#;
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        for (t, &m) in lexed.tokens.iter().zip(&mask) {
            if let TokKind::Ident(s) = &t.kind {
                match s.as_str() {
                    "cold" | "inner" | "tests" => assert!(m, "{s} should be test code"),
                    "hot" | "hot2" | "live" | "live2" => {
                        assert!(!m, "{s} should be live code")
                    }
                    _ => {}
                }
            }
        }
    }
}
