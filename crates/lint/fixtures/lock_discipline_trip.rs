// Golden fixture: MUST trip `lock-discipline` five times — raw mutex,
// raw rwlock, raw condvar, free-running thread, raw clock.
use std::sync::Condvar;
use std::sync::Mutex;
use std::sync::RwLock;

fn spawn_worker() {
    std::thread::spawn(|| {});
}

fn time_it() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
