// Golden fixture: MUST trip `lock-discipline` three times — raw mutex,
// free-running thread, raw clock.
use std::sync::Mutex;

fn spawn_worker() {
    std::thread::spawn(|| {});
}

fn time_it() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
