// Golden fixture: MUST pass `nan-ordering`. Total-order comparison via
// the geom helper; a PartialOrd *definition* (no preceding dot) is a
// trait impl, not a float comparison, and must not trip.
fn total_sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| obstacle_geom::total_cmp(*a, *b));
}

struct D(f64);

impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(obstacle_geom::total_cmp(self.0, other.0))
    }
}
