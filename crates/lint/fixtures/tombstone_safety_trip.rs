// Golden fixture: MUST trip `tombstone-safety` (linted as if it were a
// core operator module). This is the exact shape of the PR 7 bug —
// enumerating the raw obstacle vec, which still contains tombstoned ids.
fn stale_enumeration(obstacles: &ObstacleIndex) -> usize {
    obstacles.polygons().len()
}

fn stale_points(entities: &EntityIndex) -> usize {
    entities.points().len()
}
