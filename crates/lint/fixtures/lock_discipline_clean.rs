// Golden fixture: MUST pass `lock-discipline`. The shim mutex (with its
// debug lock-order checker), scoped threads, and the Stopwatch facade.
use obstacle_rtree::sync::{Mutex, Stopwatch};

fn shard_work(shard: &Mutex<u64>) {
    std::thread::scope(|s| {
        s.spawn(|| {
            *shard.lock() += 1;
        });
    });
}

fn time_it(shard: &Mutex<u64>) -> std::time::Duration {
    let t0 = Stopwatch::start();
    shard_work(shard);
    t0.elapsed()
}
