// Golden fixture: MUST pass `lock-discipline`. The shim mutex (with its
// debug lock-order checker), condvar, rwlock, scoped threads, and the
// Stopwatch facade.
use obstacle_rtree::sync::{Condvar, Mutex, RwLock, Stopwatch};

fn shard_work(shard: &Mutex<u64>, world: &RwLock<u64>, cv: &Condvar) {
    std::thread::scope(|s| {
        s.spawn(|| {
            *shard.lock() += *world.read();
            cv.notify_all();
        });
    });
}

fn time_it(shard: &Mutex<u64>, world: &RwLock<u64>, cv: &Condvar) -> std::time::Duration {
    let t0 = Stopwatch::start();
    shard_work(shard, world, cv);
    t0.elapsed()
}
