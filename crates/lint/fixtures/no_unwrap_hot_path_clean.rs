// Golden fixture: MUST pass `no-unwrap-hot-path`. Option flow on the
// hot path; unwraps confined to the `#[cfg(test)]` module; one
// invariant-documented expect carrying an inline allow.
fn frontier_pop(heap: &mut std::collections::BinaryHeap<u64>) -> Option<u64> {
    heap.pop()
}

fn documented(v: Option<f64>) -> f64 {
    // lint:allow(no-unwrap-hot-path): v is Some by the fixpoint invariant
    v.expect("fixpoint invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
