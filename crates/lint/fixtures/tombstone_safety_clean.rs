// Golden fixture: MUST pass `tombstone-safety`. Live-only enumeration
// through the sanctioned accessors; mentioning polygons() in a comment
// or "polygons()" in a string is also fine.
fn live_enumeration(obstacles: &ObstacleIndex) -> usize {
    let msg = "never call .polygons() directly";
    let _ = msg;
    obstacles.live_polygons().count()
}

fn live_points(entities: &EntityIndex) -> usize {
    entities.live_points().count()
}
