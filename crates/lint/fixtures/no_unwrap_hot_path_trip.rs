// Golden fixture: MUST trip `no-unwrap-hot-path` twice when linted as a
// core operator module — a bare unwrap and a bare expect on the hot path.
fn frontier_pop(heap: &mut std::collections::BinaryHeap<u64>) -> u64 {
    heap.pop().unwrap()
}

fn bound(v: Option<f64>) -> f64 {
    v.expect("bound computed above")
}
