// Golden fixture: MUST trip `nan-ordering` twice — a panicking float
// sort and a comparator unwrap, both of which abort on the first NaN.
fn panicking_sort(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn panicking_key(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("finite")
}
