//! Synthetic datasets and workloads for the obstacle-query experiments.
//!
//! The paper's obstacle dataset is the set of 131,461 MBRs of Los Angeles
//! streets (the original download link is dead and the data proprietary).
//! This crate generates a faithful substitute (see `DESIGN.md` §3/§4): a
//! recursive, density-weighted binary space partition produces city
//! *blocks*; each block receives one thin "street MBR" inset strictly
//! inside it, guaranteeing the paper's **non-overlapping obstacles**
//! invariant while reproducing a clustered, heavy-tailed urban layout.
//!
//! Entity datasets and query workloads "follow the obstacle distribution"
//! (§7): points are sampled on obstacle boundaries with probability
//! proportional to perimeter, then displaced outward by a configurable
//! hair's breadth so they are numerically strictly outside every interior
//! (the paper allows entities on boundaries but not inside).

#![warn(missing_docs)]

mod arrivals;
mod city;
mod entities;
mod workload;

pub use arrivals::open_loop_arrivals;
pub use city::{City, CityConfig, ObstacleShape};
pub use entities::{sample_entities, uniform_points, ENTITY_DISPLACEMENT};
pub use workload::{
    batch_workload, clustered_batch_workload, parameter_grid, query_workload, BatchMix, BatchQuery,
    ClusterSpec, EntitySets,
};
