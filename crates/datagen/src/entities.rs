//! Entity datasets following the obstacle distribution.

use crate::city::City;
use obstacle_geom::rng::{Rng, SeedableRng, SmallRng};
use obstacle_geom::Point;

/// Outward displacement applied to boundary-sampled entities so they are
/// numerically strictly outside every obstacle interior. At unit-square
/// scale this is far below any query range of interest (the paper's
/// smallest range is 0.001 % = 1e-5 of the universe side).
pub const ENTITY_DISPLACEMENT: f64 = 1e-9;

/// Samples `count` entity points that follow the obstacle distribution:
/// each point lies on (an outward hair's breadth from) the boundary of an
/// obstacle chosen with probability proportional to its perimeter, as in
/// the paper's synthetic entity datasets ("the entities are allowed to lie
/// on the boundaries of the obstacles but not in their interior").
pub fn sample_entities(city: &City, count: usize, seed: u64) -> Vec<Point> {
    assert!(!city.is_empty(), "cannot sample entities without obstacles");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE17);
    // Cumulative perimeter weights.
    let mut cumulative = Vec::with_capacity(city.len());
    let mut acc = 0.0;
    for poly in &city.obstacles {
        acc += poly.perimeter();
        cumulative.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < x).min(city.len() - 1);
            let t = rng.gen::<f64>();
            city.obstacles[idx].boundary_point_displaced(t, ENTITY_DISPLACEMENT)
        })
        .collect()
}

/// Uniformly distributed points in the city universe that avoid obstacle
/// interiors (rejection sampling). Used by the distribution-sensitivity
/// ablations, not by the paper reproduction itself.
pub fn uniform_points(city: &City, count: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x04F);
    let u = city.universe;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let p = Point::new(
            u.min.x + rng.gen::<f64>() * u.width(),
            u.min.y + rng.gen::<f64>() * u.height(),
        );
        // Obstacles are rectangles, so rejection is a containment scan
        // (random points hit boundaries with probability zero).
        if city.rects.iter().all(|r| !r.contains_point(p)) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use obstacle_geom::PointLocation;

    #[test]
    fn entities_are_outside_every_interior() {
        let city = City::generate(CityConfig::new(150, 2));
        let pts = sample_entities(&city, 400, 7);
        assert_eq!(pts.len(), 400);
        for (i, p) in pts.iter().enumerate() {
            for (oi, poly) in city.obstacles.iter().enumerate() {
                assert_ne!(
                    poly.locate(*p),
                    PointLocation::Inside,
                    "entity {i} is inside obstacle {oi}"
                );
            }
        }
    }

    #[test]
    fn entities_hug_obstacle_boundaries() {
        let city = City::generate(CityConfig::new(150, 2));
        let pts = sample_entities(&city, 100, 3);
        for p in &pts {
            let nearest = city
                .rects
                .iter()
                .map(|r| r.mindist_point(*p))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 1e-6,
                "entity {p} is {nearest} away from all obstacles"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let city = City::generate(CityConfig::new(80, 9));
        assert_eq!(sample_entities(&city, 50, 1), sample_entities(&city, 50, 1));
        assert_ne!(sample_entities(&city, 50, 1), sample_entities(&city, 50, 2));
    }

    #[test]
    fn uniform_points_avoid_interiors() {
        let city = City::generate(CityConfig::new(60, 4));
        let pts = uniform_points(&city, 200, 5);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            for poly in &city.obstacles {
                assert_ne!(poly.locate(*p), PointLocation::Inside);
            }
        }
    }
}
