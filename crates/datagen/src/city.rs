//! City generator: density-weighted BSP blocks with inset street MBRs.

use obstacle_geom::rng::{Rng, SeedableRng, SmallRng};
use obstacle_geom::{Point, Polygon, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Shape of the generated obstacles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ObstacleShape {
    /// Thin axis-parallel rectangles — the MBRs of streets, as in the
    /// paper's LA dataset.
    #[default]
    StreetRect,
    /// Random convex polygons with up to the given number of vertices
    /// (≥ 3). Exercises the general-polygon code paths the paper claims
    /// ("our methods support arbitrary polygons").
    ConvexPolygon {
        /// Upper bound on the vertex count per obstacle.
        max_vertices: usize,
    },
}

/// Configuration of the synthetic city.
#[derive(Clone, Copy, Debug)]
pub struct CityConfig {
    /// Number of obstacles (street MBRs) to generate. The paper's full
    /// scale is 131,461.
    pub obstacle_count: usize,
    /// RNG seed; equal configs generate identical cities.
    pub seed: u64,
    /// The data universe (defaults to the unit square).
    pub universe: Rect,
    /// Number of Gaussian density bumps ("downtowns"); more bumps ⇒ more
    /// clustering of small blocks.
    pub cluster_centers: usize,
    /// Obstacle shape (defaults to street rectangles, as in the paper).
    pub shape: ObstacleShape,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            obstacle_count: 10_000,
            seed: 0xC17,
            universe: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            cluster_centers: 6,
            shape: ObstacleShape::default(),
        }
    }
}

impl CityConfig {
    /// Convenience: `obstacle_count` and `seed`, defaults elsewhere.
    pub fn new(obstacle_count: usize, seed: u64) -> Self {
        CityConfig {
            obstacle_count,
            seed,
            ..Default::default()
        }
    }

    /// The paper's full-scale obstacle cardinality (|O| = 131,461).
    pub const PAPER_OBSTACLE_COUNT: usize = 131_461;
}

/// A generated city: non-overlapping rectangular obstacles.
#[derive(Clone, Debug)]
pub struct City {
    /// The data universe.
    pub universe: Rect,
    /// Obstacle rectangles (`rects[i]` bounds `obstacles[i]`).
    pub rects: Vec<Rect>,
    /// Obstacles as polygons (for visibility computations).
    pub obstacles: Vec<Polygon>,
}

/// A BSP block pending subdivision, prioritised by density-weighted area.
struct Block {
    rect: Rect,
    weight: f64,
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight
    }
}
impl Eq for Block {}
impl PartialOrd for Block {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Block {
    fn cmp(&self, other: &Self) -> Ordering {
        obstacle_geom::total_cmp(self.weight, other.weight)
    }
}

impl City {
    /// Generates a city.
    pub fn generate(config: CityConfig) -> City {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let u = config.universe;

        // Density field: a base plus Gaussian bumps. Blocks in dense areas
        // carry more weight and get subdivided further, yielding the
        // clustered, heavy-tailed block sizes of a real street map.
        let bumps: Vec<(Point, f64, f64)> = (0..config.cluster_centers)
            .map(|_| {
                let c = Point::new(
                    u.min.x + rng.gen::<f64>() * u.width(),
                    u.min.y + rng.gen::<f64>() * u.height(),
                );
                let sigma = (0.05 + rng.gen::<f64>() * 0.15) * u.width().max(u.height());
                let amp = 1.0 + rng.gen::<f64>() * 8.0;
                (c, sigma, amp)
            })
            .collect();
        let density = |p: Point| -> f64 {
            let mut d = 0.15;
            for &(c, sigma, amp) in &bumps {
                let r2 = p.dist_sq(c);
                d += amp * (-r2 / (2.0 * sigma * sigma)).exp();
            }
            d
        };

        // Recursive weighted BSP until we have one block per obstacle.
        let mut heap: BinaryHeap<Block> = BinaryHeap::new();
        let weight = |r: &Rect| r.area() * density(r.center());
        heap.push(Block {
            rect: u,
            weight: weight(&u),
        });
        while heap.len() < config.obstacle_count.max(1) {
            let Block { rect, .. } = heap.pop().expect("heap never empties");
            let ratio = 0.35 + rng.gen::<f64>() * 0.30;
            let (a, b) = if rect.width() >= rect.height() {
                let x = rect.min.x + rect.width() * ratio;
                (
                    Rect::from_coords(rect.min.x, rect.min.y, x, rect.max.y),
                    Rect::from_coords(x, rect.min.y, rect.max.x, rect.max.y),
                )
            } else {
                let y = rect.min.y + rect.height() * ratio;
                (
                    Rect::from_coords(rect.min.x, rect.min.y, rect.max.x, y),
                    Rect::from_coords(rect.min.x, y, rect.max.x, rect.max.y),
                )
            };
            heap.push(Block {
                weight: weight(&a),
                rect: a,
            });
            heap.push(Block {
                weight: weight(&b),
                rect: b,
            });
        }

        // One obstacle per block, inset so obstacles never touch across
        // block borders: margin ≥ 6 % of the block extent per side.
        let mut obstacles = Vec::with_capacity(config.obstacle_count);
        for Block { rect: block, .. } in heap.into_vec() {
            let (w, h) = (block.width(), block.height());
            let mx = w * (0.06 + rng.gen::<f64>() * 0.06);
            let my = h * (0.06 + rng.gen::<f64>() * 0.06);
            let inner = Rect::from_coords(
                block.min.x + mx,
                block.min.y + my,
                block.max.x - mx,
                block.max.y - my,
            );
            obstacles.push(match config.shape {
                ObstacleShape::StreetRect => street_rect(&inner, &mut rng),
                ObstacleShape::ConvexPolygon { max_vertices } => {
                    convex_obstacle(&inner, max_vertices, &mut rng)
                }
            });
        }

        let rects = obstacles.iter().map(|p: &Polygon| p.bbox()).collect();
        City {
            universe: u,
            rects,
            obstacles,
        }
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the city has no obstacles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total obstacle perimeter (used for boundary-weighted sampling).
    pub fn total_perimeter(&self) -> f64 {
        self.obstacles.iter().map(|p| p.perimeter()).sum()
    }
}

/// A thin rectangle along the longer axis of the block: a street's MBR.
fn street_rect(inner: &Rect, rng: &mut SmallRng) -> Polygon {
    let (iw, ih) = (inner.width(), inner.height());
    let (sw, sh) = if iw >= ih {
        (
            iw * (0.60 + rng.gen::<f64>() * 0.30),
            ih * (0.15 + rng.gen::<f64>() * 0.25),
        )
    } else {
        (
            iw * (0.15 + rng.gen::<f64>() * 0.25),
            ih * (0.60 + rng.gen::<f64>() * 0.30),
        )
    };
    let ox = rng.gen::<f64>() * (iw - sw);
    let oy = rng.gen::<f64>() * (ih - sh);
    let x0 = inner.min.x + ox;
    let y0 = inner.min.y + oy;
    Polygon::from_rect(Rect::from_coords(x0, y0, x0 + sw, y0 + sh))
}

/// A random convex polygon strictly inside the block: the convex hull of
/// random points in a sub-rectangle. Degenerate hulls (rare collinear
/// draws) fall back to the street rectangle.
fn convex_obstacle(inner: &Rect, max_vertices: usize, rng: &mut SmallRng) -> Polygon {
    let samples = max_vertices.max(3) + 3;
    let pts: Vec<obstacle_geom::Point> = (0..samples)
        .map(|_| {
            obstacle_geom::Point::new(
                inner.min.x + rng.gen::<f64>() * inner.width(),
                inner.min.y + rng.gen::<f64>() * inner.height(),
            )
        })
        .collect();
    let mut hull = obstacle_geom::convex_hull(&pts);
    if hull.len() > max_vertices.max(3) {
        hull.truncate(max_vertices.max(3));
        // Truncating a hull keeps it convex (a sub-sequence of a convex
        // loop), but may produce collinear-ish slivers; re-validate.
    }
    match Polygon::new(hull) {
        Ok(p) => p,
        Err(_) => street_rect(inner, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        for n in [1usize, 2, 37, 500] {
            let c = City::generate(CityConfig::new(n, 1));
            assert_eq!(c.len(), n);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = City::generate(CityConfig::new(200, 7));
        let b = City::generate(CityConfig::new(200, 7));
        assert_eq!(a.rects, b.rects);
        let c = City::generate(CityConfig::new(200, 8));
        assert_ne!(a.rects, c.rects);
    }

    #[test]
    fn obstacles_are_strictly_disjoint() {
        let c = City::generate(CityConfig::new(600, 3));
        for i in 0..c.rects.len() {
            for j in (i + 1)..c.rects.len() {
                assert!(
                    !c.rects[i].intersects(&c.rects[j]),
                    "obstacles {i} and {j} overlap: {:?} {:?}",
                    c.rects[i],
                    c.rects[j]
                );
            }
        }
    }

    #[test]
    fn obstacles_fit_in_universe() {
        let c = City::generate(CityConfig::new(300, 4));
        for r in &c.rects {
            assert!(c.universe.contains_rect(r));
            assert!(r.area() > 0.0);
        }
    }

    #[test]
    fn convex_polygon_cities_are_disjoint_and_convex() {
        let c = City::generate(CityConfig {
            shape: ObstacleShape::ConvexPolygon { max_vertices: 7 },
            ..CityConfig::new(300, 11)
        });
        assert_eq!(c.len(), 300);
        for (i, p) in c.obstacles.iter().enumerate() {
            assert!(p.is_convex(), "obstacle {i} is not convex");
            assert!(p.len() >= 3 && p.len() <= 7);
            assert_eq!(p.bbox(), c.rects[i]);
        }
        for i in 0..c.rects.len() {
            for j in (i + 1)..c.rects.len() {
                assert!(
                    !c.rects[i].intersects(&c.rects[j]),
                    "obstacles {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn layout_is_clustered() {
        // Density weighting must produce meaningful size variety: the
        // largest obstacle should dwarf the smallest.
        let c = City::generate(CityConfig::new(1000, 5));
        let mut areas: Vec<f64> = c.rects.iter().map(|r| r.area()).collect();
        areas.sort_by(|a, b| obstacle_geom::total_cmp(*a, *b));
        let small = areas[areas.len() / 20]; // 5th percentile
        let large = areas[areas.len() * 19 / 20]; // 95th percentile
        assert!(
            large > small * 3.0,
            "expected heavy-tailed areas, got p5 {small} vs p95 {large}"
        );
    }

    #[test]
    fn block_heap_order_tolerates_nan_weight() {
        // Regression for the NaN burn-down: a NaN split weight must order
        // deterministically instead of panicking inside the BinaryHeap.
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let nan = Block {
            rect: r,
            weight: f64::NAN,
        };
        let one = Block {
            rect: r,
            weight: 1.0,
        };
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(one < nan); // NaN sorts greatest → split first, harmless
    }
}
