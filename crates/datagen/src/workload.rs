//! Query workloads and the paper's parameter grids.

use crate::city::City;
use crate::entities::sample_entities;
use obstacle_geom::rng::{Rng, SeedableRng, SmallRng};
use obstacle_geom::Point;

/// Query points for range / NN workloads: the paper executes "workloads of
/// 200 queries, which also follow the obstacle distribution" (§7). Query
/// points are sampled exactly like entities but from an independent seed
/// stream.
pub fn query_workload(city: &City, count: usize, seed: u64) -> Vec<Point> {
    sample_entities(city, count, seed ^ 0x5EED)
}

/// The two entity datasets `S` and `T` of a join/closest-pair experiment.
#[derive(Clone, Debug)]
pub struct EntitySets {
    /// The outer dataset `S`.
    pub s: Vec<Point>,
    /// The inner dataset `T`.
    pub t: Vec<Point>,
}

impl EntitySets {
    /// Generates `S` (`s_count` points) and `T` (`t_count` points), both
    /// following the obstacle distribution with independent streams.
    pub fn generate(city: &City, s_count: usize, t_count: usize, seed: u64) -> Self {
        EntitySets {
            s: sample_entities(city, s_count, seed.wrapping_mul(3) ^ 0x5),
            t: sample_entities(city, t_count, seed.wrapping_mul(5) ^ 0x7),
        }
    }
}

/// One operator invocation of a mixed batch workload — the neutral spec
/// the generator emits. `obstacle_core::batch::Query` mirrors these
/// variants; the conversion lives downstream (bench harness, CLI, test
/// suites) so this crate stays independent of the query processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchQuery {
    /// Obstacle range query at `q` with obstructed radius `e`.
    Range {
        /// Query point.
        q: Point,
        /// Obstructed-distance radius.
        e: f64,
    },
    /// Obstacle k-NN query at `q`.
    Nearest {
        /// Query point.
        q: Point,
        /// Number of neighbours.
        k: usize,
    },
    /// Obstacle e-distance self-join over the workload's entity dataset.
    DistanceJoin {
        /// Obstructed-distance threshold.
        e: f64,
    },
    /// Obstructed distance semi-join of the entity dataset with itself.
    SemiJoin,
    /// Obstacle k-closest-pairs over the entity dataset.
    ClosestPairs {
        /// Number of pairs.
        k: usize,
    },
    /// Shortest obstructed path query.
    Path {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
    },
}

/// Relative draw weights of the operators in a mixed batch workload.
///
/// The default mix is point-query heavy — the shape of the paper's §7
/// workloads and of clustering front-ends (mostly range/NN probes,
/// occasional joins, a trickle of navigation paths). A weight of zero
/// removes the operator entirely.
#[derive(Clone, Copy, Debug)]
pub struct BatchMix {
    /// Weight of [`BatchQuery::Range`].
    pub range: u32,
    /// Weight of [`BatchQuery::Nearest`].
    pub nearest: u32,
    /// Weight of [`BatchQuery::DistanceJoin`].
    pub distance_join: u32,
    /// Weight of [`BatchQuery::SemiJoin`].
    pub semi_join: u32,
    /// Weight of [`BatchQuery::ClosestPairs`].
    pub closest_pairs: u32,
    /// Weight of [`BatchQuery::Path`].
    pub path: u32,
}

impl Default for BatchMix {
    fn default() -> Self {
        BatchMix {
            range: 40,
            nearest: 40,
            distance_join: 2,
            semi_join: 1,
            closest_pairs: 2,
            path: 15,
        }
    }
}

impl BatchMix {
    /// A mix of only the unary point queries (range, NN, path) — every
    /// query cost is comparable, which makes thread-scaling measurements
    /// readable.
    pub fn point_queries() -> Self {
        BatchMix {
            range: 40,
            nearest: 40,
            distance_join: 0,
            semi_join: 0,
            closest_pairs: 0,
            path: 20,
        }
    }
}

/// Generates a deterministic mixed-operator batch workload of `count`
/// queries over `city` (see [`BatchMix`] for the operator distribution).
///
/// Query points follow the obstacle distribution, like the paper's
/// workloads (§7). Ranges are drawn around
/// [`parameter_grid::DEFAULT_RANGE_FRACTION`] (0.5×–2×), `k` from the
/// paper's grid, join thresholds around
/// [`parameter_grid::DEFAULT_JOIN_RANGE_FRACTION`]. Path queries connect
/// a workload point to a second point at most 5 % of the universe side
/// away — local navigation probes, so one pathological cross-town route
/// cannot dominate a throughput measurement.
pub fn batch_workload(city: &City, count: usize, seed: u64, mix: BatchMix) -> Vec<BatchQuery> {
    // One obstacle-distribution point per query plus spares for paths.
    let points = sample_entities(city, 2 * count.max(1), seed ^ 0xBA7C5);
    workload_from_points(city, count, seed, mix, points)
}

/// Spatial shape of a clustered batch workload: queries concentrate
/// around `clusters` hotspot centres (themselves following the obstacle
/// distribution), each query point displaced at most `spread` × universe
/// side from its centre — the access pattern an obstructed-clustering
/// front end (El-Zawawy & El-Sharkawi) generates, and the favourable case
/// for the batch engine's scene caches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of hotspot centres.
    pub clusters: usize,
    /// Maximum displacement from the centre, as a fraction of the
    /// universe side (keep well below the scene caches' 2 % reuse slack
    /// for an honest locality workload).
    pub spread: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            clusters: 8,
            spread: 0.005,
        }
    }
}

/// Generates a deterministic *clustered* mixed-operator batch workload:
/// like [`batch_workload`], but query points concentrate around
/// [`ClusterSpec::clusters`] hotspots, and consecutive queries cycle
/// through the hotspots round-robin — so the **input order is maximally
/// scattered** while the workload is spatially clustered. A
/// spatially-aware batch scheduler (Hilbert order) can recover the
/// clustering; input-order execution cannot. This is the workload the
/// scheduling benchmarks and property tests measure.
pub fn clustered_batch_workload(
    city: &City,
    count: usize,
    seed: u64,
    mix: BatchMix,
    spec: ClusterSpec,
) -> Vec<BatchQuery> {
    assert!(spec.clusters > 0, "need at least one cluster");
    let centers = sample_entities(city, spec.clusters, seed ^ 0xC1A5);
    let side = city.universe.width().max(city.universe.height());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC1A6);
    let u = city.universe;
    let points: Vec<Point> = (0..2 * count.max(1))
        .map(|j| {
            let c = centers[j % centers.len()];
            // Hotspot centres sit on obstacle boundaries (the entity
            // distribution), so a blind displacement can land *inside*
            // an obstacle — where every obstructed distance is undefined
            // and the operators degenerate to full-dataset scans.
            // Re-draw until the point is strictly outside every
            // interior, falling back to the centre itself (guaranteed
            // outside by `sample_entities`).
            let mut p = c;
            for _ in 0..16 {
                let dx = (rng.gen::<f64>() - 0.5) * 2.0 * spec.spread * side;
                let dy = (rng.gen::<f64>() - 0.5) * 2.0 * spec.spread * side;
                let candidate = Point::new(
                    (c.x + dx).clamp(u.min.x, u.max.x),
                    (c.y + dy).clamp(u.min.y, u.max.y),
                );
                if !city
                    .obstacles
                    .iter()
                    .any(|o| o.contains_interior(candidate))
                {
                    p = candidate;
                    break;
                }
            }
            p
        })
        .collect();
    workload_from_points(city, count, seed, mix, points)
}

/// Shared draw loop of [`batch_workload`] / [`clustered_batch_workload`]:
/// operators and parameters come from the mix and seed, query locations
/// from `points` (cycled — callers provide `2 × count` so paths get a
/// second endpoint).
fn workload_from_points(
    city: &City,
    count: usize,
    seed: u64,
    mix: BatchMix,
    points: Vec<Point>,
) -> Vec<BatchQuery> {
    let weights = [
        mix.range,
        mix.nearest,
        mix.distance_join,
        mix.semi_join,
        mix.closest_pairs,
        mix.path,
    ];
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "batch mix must have at least one nonzero weight");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C4);
    let side = city.universe.width().max(city.universe.height());
    let mut next_point = 0usize;
    let mut point = || {
        let p = points[next_point % points.len()];
        next_point += 1;
        p
    };

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut roll = rng.gen_range_u64(0, total as u64) as u32;
        let op = weights
            .iter()
            .position(|&w| {
                if roll < w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .expect("roll < total");
        let scale = 0.5 + 1.5 * rng.gen::<f64>(); // 0.5×–2× of the default
        out.push(match op {
            0 => BatchQuery::Range {
                q: point(),
                e: parameter_grid::DEFAULT_RANGE_FRACTION * side * scale,
            },
            1 => BatchQuery::Nearest {
                q: point(),
                k: parameter_grid::K_VALUES
                    [rng.gen_range_u64(0, parameter_grid::K_VALUES.len() as u64) as usize],
            },
            2 => BatchQuery::DistanceJoin {
                e: parameter_grid::DEFAULT_JOIN_RANGE_FRACTION * side * scale,
            },
            3 => BatchQuery::SemiJoin,
            4 => BatchQuery::ClosestPairs {
                k: parameter_grid::K_VALUES
                    [rng.gen_range_u64(0, parameter_grid::K_VALUES.len() as u64) as usize],
            },
            _ => {
                let from = point();
                let dx = (rng.gen::<f64>() - 0.5) * 0.1 * side;
                let dy = (rng.gen::<f64>() - 0.5) * 0.1 * side;
                let u = city.universe;
                let to = Point::new(
                    (from.x + dx).clamp(u.min.x, u.max.x),
                    (from.y + dy).clamp(u.min.y, u.max.y),
                );
                BatchQuery::Path { from, to }
            }
        });
    }
    out
}

/// The exact parameter grids of the paper's evaluation (§7), expressed as
/// fractions of the obstacle cardinality / universe side:
///
/// * cardinality ratios `|P|/|O|` for range & NN figures (13, 15a, 16, 18a),
/// * ranges `e` for Figs. 14/15b (percent of universe side),
/// * `k` values for Figs. 17/18b/22,
/// * join ratios `|S|/|O|` for Figs. 19/21,
/// * join ranges `e` for Fig. 20.
pub mod parameter_grid {
    /// `|P|/|O|` ∈ {0.1, 0.5, 1, 2, 10} (Figs. 13, 15a, 16, 18a).
    pub const CARDINALITY_RATIOS: [f64; 5] = [0.1, 0.5, 1.0, 2.0, 10.0];
    /// Range `e` as a fraction of the universe side:
    /// {0.01 %, 0.05 %, 0.1 %, 0.5 %, 1 %} (Figs. 14, 15b).
    pub const RANGE_FRACTIONS: [f64; 5] = [0.0001, 0.0005, 0.001, 0.005, 0.01];
    /// Default range for cardinality sweeps: 0.1 % of the side.
    pub const DEFAULT_RANGE_FRACTION: f64 = 0.001;
    /// `k` ∈ {1, 4, 16, 64, 256} (Figs. 17, 18b, 22).
    pub const K_VALUES: [usize; 5] = [1, 4, 16, 64, 256];
    /// Default `k` for cardinality sweeps (Figs. 16, 18a, 21).
    pub const DEFAULT_K: usize = 16;
    /// `|S|/|O|` ∈ {0.01, 0.05, 0.1, 0.5, 1} (Figs. 19, 21).
    pub const JOIN_CARDINALITY_RATIOS: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];
    /// Join `e` ∈ {0.001 %, …, 0.1 %} of the side (Fig. 20).
    pub const JOIN_RANGE_FRACTIONS: [f64; 5] = [0.00001, 0.00005, 0.0001, 0.0005, 0.001];
    /// Default join range: 0.01 % of the side (Fig. 19).
    pub const DEFAULT_JOIN_RANGE_FRACTION: f64 = 0.0001;
    /// `|T|/|O|` used throughout the join/CP experiments.
    pub const T_RATIO: f64 = 0.1;
    /// Workload size for range/NN experiments (queries per data point).
    pub const WORKLOAD_QUERIES: usize = 200;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let city = City::generate(CityConfig::new(100, 1));
        let w1 = query_workload(&city, 25, 9);
        let w2 = query_workload(&city, 25, 9);
        assert_eq!(w1.len(), 25);
        assert_eq!(w1, w2);
    }

    #[test]
    fn workload_differs_from_entities_with_same_seed() {
        let city = City::generate(CityConfig::new(100, 1));
        let entities = sample_entities(&city, 25, 9);
        let queries = query_workload(&city, 25, 9);
        assert_ne!(entities, queries, "streams must be independent");
    }

    #[test]
    fn entity_sets_have_requested_sizes() {
        let city = City::generate(CityConfig::new(100, 1));
        let sets = EntitySets::generate(&city, 40, 12, 3);
        assert_eq!(sets.s.len(), 40);
        assert_eq!(sets.t.len(), 12);
        assert_ne!(sets.s[..12], sets.t[..]);
    }

    #[test]
    fn batch_workload_is_deterministic_and_mixed() {
        let city = City::generate(CityConfig::new(100, 1));
        let w1 = batch_workload(&city, 200, 7, BatchMix::default());
        let w2 = batch_workload(&city, 200, 7, BatchMix::default());
        assert_eq!(w1.len(), 200);
        assert_eq!(w1, w2, "same seed must reproduce the workload");
        let w3 = batch_workload(&city, 200, 8, BatchMix::default());
        assert_ne!(w1, w3, "different seeds must differ");
        // Every operator of the default mix appears in 200 draws.
        for probe in [
            |q: &BatchQuery| matches!(q, BatchQuery::Range { .. }),
            |q: &BatchQuery| matches!(q, BatchQuery::Nearest { .. }),
            |q: &BatchQuery| matches!(q, BatchQuery::Path { .. }),
        ] {
            assert!(w1.iter().any(probe), "missing a high-weight operator");
        }
        let binary = w1
            .iter()
            .filter(|q| {
                matches!(
                    q,
                    BatchQuery::DistanceJoin { .. }
                        | BatchQuery::SemiJoin
                        | BatchQuery::ClosestPairs { .. }
                )
            })
            .count();
        assert!(binary < 40, "binary operators must stay rare by default");
    }

    #[test]
    fn batch_workload_respects_zero_weights() {
        let city = City::generate(CityConfig::new(80, 2));
        let w = batch_workload(&city, 150, 3, BatchMix::point_queries());
        assert!(w.iter().all(|q| matches!(
            q,
            BatchQuery::Range { .. } | BatchQuery::Nearest { .. } | BatchQuery::Path { .. }
        )));
        // Path endpoints stay local (≤ ~7 % of the side diagonally).
        let side = city.universe.width().max(city.universe.height());
        for q in &w {
            if let BatchQuery::Path { from, to } = q {
                assert!(from.dist(*to) <= 0.08 * side, "{from} -> {to}");
            }
        }
    }

    #[test]
    fn clustered_workload_is_deterministic_and_round_robin_scattered() {
        let city = City::generate(CityConfig::new(100, 1));
        let spec = ClusterSpec {
            clusters: 4,
            spread: 0.002,
        };
        let mix = BatchMix::point_queries();
        let w1 = clustered_batch_workload(&city, 120, 5, mix, spec);
        assert_eq!(w1, clustered_batch_workload(&city, 120, 5, mix, spec));
        assert_eq!(w1.len(), 120);

        let anchor = |q: &BatchQuery| match *q {
            BatchQuery::Range { q, .. } | BatchQuery::Nearest { q, .. } => q,
            BatchQuery::Path { from, .. } => from,
            _ => unreachable!("point-query mix"),
        };
        let side = city.universe.width().max(city.universe.height());
        // Same-stride queries share a hotspot: anchors within the spread
        // diameter. Consecutive queries cycle hotspots, so on aggregate
        // they sit much farther apart than cluster-mates.
        let mut within = 0usize;
        let mut pairs = 0usize;
        for ch in w1.chunks_exact(spec.clusters) {
            for q in ch.windows(2) {
                pairs += 1;
                if anchor(&q[0]).dist(anchor(&q[1])) <= 2.0 * 2.0 * spec.spread * side {
                    within += 1;
                }
            }
        }
        assert!(
            within * 2 < pairs,
            "consecutive queries must mostly hop clusters ({within}/{pairs} stayed local)"
        );
        // Every anchor lies near one of the four hotspot centres: the
        // stride-4 subsequences are tight.
        for j in 0..w1.len() - spec.clusters {
            let (a, b) = (anchor(&w1[j]), anchor(&w1[j + spec.clusters]));
            assert!(
                a.dist(b) <= 2.0 * 2.0 * spec.spread * side,
                "queries {j} and {} share a hotspot but sit far apart",
                j + spec.clusters
            );
        }
    }

    #[test]
    fn grids_match_the_paper() {
        use parameter_grid::*;
        assert_eq!(CARDINALITY_RATIOS.len(), 5);
        assert_eq!(K_VALUES, [1, 4, 16, 64, 256]);
        assert!((RANGE_FRACTIONS[2] - 0.001).abs() < 1e-12);
        assert_eq!(WORKLOAD_QUERIES, 200);
    }
}
