//! Query workloads and the paper's parameter grids.

use crate::city::City;
use crate::entities::sample_entities;
use obstacle_geom::Point;

/// Query points for range / NN workloads: the paper executes "workloads of
/// 200 queries, which also follow the obstacle distribution" (§7). Query
/// points are sampled exactly like entities but from an independent seed
/// stream.
pub fn query_workload(city: &City, count: usize, seed: u64) -> Vec<Point> {
    sample_entities(city, count, seed ^ 0x5EED)
}

/// The two entity datasets `S` and `T` of a join/closest-pair experiment.
#[derive(Clone, Debug)]
pub struct EntitySets {
    /// The outer dataset `S`.
    pub s: Vec<Point>,
    /// The inner dataset `T`.
    pub t: Vec<Point>,
}

impl EntitySets {
    /// Generates `S` (`s_count` points) and `T` (`t_count` points), both
    /// following the obstacle distribution with independent streams.
    pub fn generate(city: &City, s_count: usize, t_count: usize, seed: u64) -> Self {
        EntitySets {
            s: sample_entities(city, s_count, seed.wrapping_mul(3) ^ 0x5),
            t: sample_entities(city, t_count, seed.wrapping_mul(5) ^ 0x7),
        }
    }
}

/// The exact parameter grids of the paper's evaluation (§7), expressed as
/// fractions of the obstacle cardinality / universe side:
///
/// * cardinality ratios `|P|/|O|` for range & NN figures (13, 15a, 16, 18a),
/// * ranges `e` for Figs. 14/15b (percent of universe side),
/// * `k` values for Figs. 17/18b/22,
/// * join ratios `|S|/|O|` for Figs. 19/21,
/// * join ranges `e` for Fig. 20.
pub mod parameter_grid {
    /// `|P|/|O|` ∈ {0.1, 0.5, 1, 2, 10} (Figs. 13, 15a, 16, 18a).
    pub const CARDINALITY_RATIOS: [f64; 5] = [0.1, 0.5, 1.0, 2.0, 10.0];
    /// Range `e` as a fraction of the universe side:
    /// {0.01 %, 0.05 %, 0.1 %, 0.5 %, 1 %} (Figs. 14, 15b).
    pub const RANGE_FRACTIONS: [f64; 5] = [0.0001, 0.0005, 0.001, 0.005, 0.01];
    /// Default range for cardinality sweeps: 0.1 % of the side.
    pub const DEFAULT_RANGE_FRACTION: f64 = 0.001;
    /// `k` ∈ {1, 4, 16, 64, 256} (Figs. 17, 18b, 22).
    pub const K_VALUES: [usize; 5] = [1, 4, 16, 64, 256];
    /// Default `k` for cardinality sweeps (Figs. 16, 18a, 21).
    pub const DEFAULT_K: usize = 16;
    /// `|S|/|O|` ∈ {0.01, 0.05, 0.1, 0.5, 1} (Figs. 19, 21).
    pub const JOIN_CARDINALITY_RATIOS: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];
    /// Join `e` ∈ {0.001 %, …, 0.1 %} of the side (Fig. 20).
    pub const JOIN_RANGE_FRACTIONS: [f64; 5] = [0.00001, 0.00005, 0.0001, 0.0005, 0.001];
    /// Default join range: 0.01 % of the side (Fig. 19).
    pub const DEFAULT_JOIN_RANGE_FRACTION: f64 = 0.0001;
    /// `|T|/|O|` used throughout the join/CP experiments.
    pub const T_RATIO: f64 = 0.1;
    /// Workload size for range/NN experiments (queries per data point).
    pub const WORKLOAD_QUERIES: usize = 200;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;

    #[test]
    fn workload_is_deterministic_and_sized() {
        let city = City::generate(CityConfig::new(100, 1));
        let w1 = query_workload(&city, 25, 9);
        let w2 = query_workload(&city, 25, 9);
        assert_eq!(w1.len(), 25);
        assert_eq!(w1, w2);
    }

    #[test]
    fn workload_differs_from_entities_with_same_seed() {
        let city = City::generate(CityConfig::new(100, 1));
        let entities = sample_entities(&city, 25, 9);
        let queries = query_workload(&city, 25, 9);
        assert_ne!(entities, queries, "streams must be independent");
    }

    #[test]
    fn entity_sets_have_requested_sizes() {
        let city = City::generate(CityConfig::new(100, 1));
        let sets = EntitySets::generate(&city, 40, 12, 3);
        assert_eq!(sets.s.len(), 40);
        assert_eq!(sets.t.len(), 12);
        assert_ne!(sets.s[..12], sets.t[..]);
    }

    #[test]
    fn grids_match_the_paper() {
        use parameter_grid::*;
        assert_eq!(CARDINALITY_RATIOS.len(), 5);
        assert_eq!(K_VALUES, [1, 4, 16, 64, 256]);
        assert!((RANGE_FRACTIONS[2] - 0.001).abs() < 1e-12);
        assert_eq!(WORKLOAD_QUERIES, 200);
    }
}
