//! Open-loop arrival processes for service benchmarks.
//!
//! A closed-loop driver (submit, wait, submit …) can never overload a
//! server — its offered rate collapses to the service rate, hiding
//! queueing behaviour entirely. Saturation experiments need an
//! *open-loop* client: arrival instants drawn in advance from a Poisson
//! process at the offered rate, submitted on schedule whether or not
//! earlier queries have finished. This module generates those schedules
//! (deterministically, from the workspace's own
//! [`rng`](obstacle_geom::rng)).

use obstacle_geom::rng::{Rng, SeedableRng, SmallRng};
use std::time::Duration;

/// Arrival offsets (from the schedule's start) of `count` queries
/// arriving as a Poisson process at `rate` arrivals per second:
/// inter-arrival gaps are i.i.d. exponential with mean `1 / rate`, via
/// inversion sampling of the workspace RNG. Deterministic in `seed`;
/// offsets are strictly non-decreasing.
///
/// # Panics
/// When `rate` is not strictly positive and finite.
pub fn open_loop_arrivals(rate: f64, count: usize, seed: u64) -> Vec<Duration> {
    assert!(
        rate.is_finite() && rate > 0.0,
        "arrival rate must be positive and finite, got {rate}"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA881_7A15);
    let mut at = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            // Exponential inter-arrival by inversion; `1 - u` keeps the
            // argument of `ln` in (0, 1] (u is uniform in [0, 1)).
            at += -(1.0 - u).ln() / rate;
            Duration::from_secs_f64(at)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_sorted() {
        let a = open_loop_arrivals(100.0, 256, 42);
        let b = open_loop_arrivals(100.0, 256, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(a, open_loop_arrivals(100.0, 256, 43));
    }

    #[test]
    fn mean_gap_tracks_the_offered_rate() {
        // 4096 exponential gaps at 1 kHz: the mean gap must land within
        // a few percent of 1 ms (std error ~ 1/sqrt(4096) ≈ 1.6 %).
        let a = open_loop_arrivals(1_000.0, 4096, 7);
        let mean_gap = a.last().unwrap().as_secs_f64() / a.len() as f64;
        assert!(
            (0.00092..=0.00108).contains(&mean_gap),
            "mean gap {mean_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = open_loop_arrivals(0.0, 1, 0);
    }
}
